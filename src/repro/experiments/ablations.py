"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Receive livelock (SOFTIRQ) vs. LRP early discard** -- packet
   overload drives the unmodified kernel's useful throughput to zero
   (interrupt-priority protocol processing starves the application),
   while LRP degrades gracefully (excess traffic discarded after the
   ~3.9 us early-demux cost) -- the Mogul/Ramakrishnan [30] effect that
   motivates sections 3.2/4.7.
2. **select() vs. the scalable event API** at growing connection
   counts: select's linear descriptor scan caps throughput; the event
   API does not (the gap between Fig. 11's two container curves).
3. **Scheduler-binding pruning** -- without periodic pruning a
   multiplexed thread's scheduler binding grows without bound (one
   entry per connection ever served); with pruning it stays small.
4. **Lottery vs. stride (container) proportional share** -- both hit a
   3:1 target share, but lottery's randomized allocation has visibly
   higher short-window variance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import SystemMode
from repro.apps.httpserver import EventDrivenServer
from repro.apps.synflood import SynFlooder
from repro.core.attributes import timeshare_attrs
from repro.experiments.common import (
    FigureResult,
    make_host,
    new_series,
    static_clients,
)
from repro.kernel.kernel import KernelConfig
from repro.metrics.stats import ThroughputMeter
from repro.net.packet import ip_addr
from repro.sched.lottery import LotteryScheduler
from repro.syscall import api


# ---------------------------------------------------------------------------
# 1. Receive livelock
# ---------------------------------------------------------------------------


def run_livelock(fast: bool = True, rates=None) -> FigureResult:
    """Useful throughput vs. overload packet rate, SOFTIRQ vs. LRP.

    Clients use persistent connections: the overload (a port flood)
    lands on the listen socket, so LRP's per-socket early discard sheds
    it while established connections keep being served.  The softirq
    kernel processes every flood packet at interrupt priority and
    livelocks -- the [30] effect.
    """
    if rates is None:
        rates = [0, 5_000, 10_000, 15_000, 20_000]
    measure_s = 1.5 if fast else 4.0
    series = []
    for mode, label in (
        (SystemMode.UNMODIFIED, "Unmodified (softirq)"),
        (SystemMode.LRP, "LRP (early discard)"),
    ):
        curve = new_series(label)
        for rate in rates:
            host = make_host(mode, seed=21)
            server = EventDrivenServer(host.kernel, use_containers=False)
            server.install()
            meter = ThroughputMeter()
            server.stats.meter = meter
            static_clients(host, 20, persistent=True)
            if rate:
                SynFlooder(
                    host.kernel, rate_per_sec=rate, batch=10,
                    rng=host.sim.rng.fork("overload"),
                ).start(at_us=200_000.0)
            host.run(until_us=host.sim.now + 500_000.0)
            meter.start(host.sim.now)
            host.run(until_us=host.sim.now + measure_s * 1e6)
            meter.stop(host.sim.now)
            curve.add(rate / 1000.0, meter.rate_per_second())
        series.append(curve)
    return FigureResult(
        title="Ablation: receive livelock (useful req/s vs overload kpkts/s)",
        x_label="kpkts/s",
        series=series,
    )


# ---------------------------------------------------------------------------
# 2. select() vs. scalable event API
# ---------------------------------------------------------------------------


def run_event_api(fast: bool = True, conn_counts=None) -> FigureResult:
    """Throughput vs. total connection count, most of them idle.

    This is the regime where select() hurts (and the regime busy
    servers actually live in): the kernel scans the entire descriptor
    set on every call even though only a handful are ready.  The
    scalable event API's cost is per-*event*, not per-descriptor.
    10 hot persistent connections drive the load; the rest are idle
    keep-alive connections.
    """
    if conn_counts is None:
        conn_counts = [10, 100, 250, 500] if fast else [10, 100, 250, 500, 750]
    measure_s = 1.0 if fast else 3.0
    hot = 10
    series = []
    for event_api, label in (("select", "select()"), ("eventapi", "event API")):
        curve = new_series(label)
        for count in conn_counts:
            host = make_host(SystemMode.RC, seed=22)
            server = EventDrivenServer(
                host.kernel, use_containers=True, event_api=event_api
            )
            server.install()
            meter = ThroughputMeter()
            server.stats.meter = meter
            static_clients(host, hot, persistent=True)
            idle = max(0, count - hot)
            # Idle keep-alive connections: connect once, then sit.  The
            # connects are spread out so the setup burst does not
            # overflow the per-class packet queue (which would be a
            # different experiment).
            static_clients(
                host,
                idle,
                base_addr=ip_addr(10, 50, 0, 1),
                persistent=True,
                think_time_us=60_000_000.0,
                timeout_us=120_000_000.0,
                start_spread_us=2_000.0,
                name_prefix="idle",
            )
            host.run(until_us=host.sim.now + max(1_500_000.0, idle * 2_500.0))
            meter.start(host.sim.now)
            host.run(until_us=host.sim.now + measure_s * 1e6)
            meter.stop(host.sim.now)
            curve.add(count, meter.rate_per_second())
        series.append(curve)
    return FigureResult(
        title="Ablation: select() linear scan vs scalable event API (req/s)",
        x_label="connections",
        series=series,
    )


# ---------------------------------------------------------------------------
# 3. Scheduler-binding pruning
# ---------------------------------------------------------------------------


@dataclass
class PruningResult:
    """Scheduler-binding set sizes with and without pruning."""

    max_with_pruning: int
    max_without_pruning: int

    def render(self) -> str:
        return (
            "Ablation: scheduler-binding pruning\n"
            f"  max binding-set size with pruning:    {self.max_with_pruning}\n"
            f"  max binding-set size without pruning: {self.max_without_pruning}"
        )


def run_pruning(fast: bool = True, n_containers: int = 40) -> PruningResult:
    """Max scheduler-binding size of a multiplexing thread, pruning on/off.

    A thread rotates its resource binding over ``n_containers`` live
    containers (an event-driven server with that many long-lived client
    classes), then settles on one.  With kernel pruning the binding set
    shrinks back to the recently-used container; without it, every
    container ever served stays in the set and keeps distorting the
    thread's combined scheduling parameters.
    """
    sizes = {}
    for pruned in (True, False):
        config = KernelConfig(mode=SystemMode.RC)
        if not pruned:
            config.prune_age_us = 1e12  # effectively never prune
        host = make_host(SystemMode.RC, seed=23, config=config)

        def rotator():
            fds = []
            for index in range(n_containers):
                fds.append((yield api.ContainerCreate(f"class-{index}")))
            # Serve every class once (the busy phase)...
            for fd in fds:
                yield api.ContainerBindThread(fd)
                yield api.Compute(200.0)
            # ...then settle on a single class for a long time.
            yield api.ContainerBindThread(fds[0])
            while True:
                yield api.Compute(1_000.0)

        process = host.kernel.spawn_process("rotator", rotator)
        host.run(until_us=host.sim.now + (1.0 if fast else 3.0) * 1e6)
        thread = process.live_threads()[0]
        sizes[pruned] = len(thread.scheduler_binding)
    return PruningResult(
        max_with_pruning=sizes[True], max_without_pruning=sizes[False]
    )


# ---------------------------------------------------------------------------
# 4. Lottery vs. stride proportional share
# ---------------------------------------------------------------------------


@dataclass
class ShareAccuracy:
    """Observed shares for a 3:1 allocation under each policy."""

    policy: str
    observed_major: float
    target_major: float = 0.75

    def render(self) -> str:
        return (
            f"  {self.policy:18s} observed {self.observed_major:.1%} "
            f"(target {self.target_major:.0%})"
        )


def _spin_forever():
    """A CPU-bound thread body."""
    while True:
        yield api.Compute(10_000.0)


def run_scheduler_policies(fast: bool = True) -> list:
    """3:1 CPU split under the container (stride) and lottery policies."""
    seconds = 3.0 if fast else 10.0
    results = []
    for policy in ("stride", "lottery"):
        config = KernelConfig(mode=SystemMode.RC)
        if policy == "lottery":
            config.scheduler_factory = lambda kernel: LotteryScheduler(
                kernel.sim.rng.fork("lottery")
            )
        host = make_host(SystemMode.RC, seed=24, config=config)
        kernel = host.kernel
        major = kernel.spawn_process(
            "major", _spin_forever, container_attrs=timeshare_attrs(weight=3.0)
        )
        minor = kernel.spawn_process(
            "minor", _spin_forever, container_attrs=timeshare_attrs(weight=1.0)
        )
        if policy == "lottery":
            LotteryScheduler.set_tickets(major.default_container, 300)
            LotteryScheduler.set_tickets(minor.default_container, 100)
        host.run(seconds=seconds)
        major_cpu = major.default_container.usage.cpu_us
        minor_cpu = minor.default_container.usage.cpu_us
        results.append(
            ShareAccuracy(
                policy=policy,
                observed_major=major_cpu / max(major_cpu + minor_cpu, 1e-9),
            )
        )
    return results


# ---------------------------------------------------------------------------
# 5. CGI dispatch mechanisms (section 2's three interfaces)
# ---------------------------------------------------------------------------


def run_cgi_mechanisms(fast: bool = True) -> FigureResult:
    """Static throughput under CGI load, per dispatch mechanism.

    Section 2 names three ways to run dynamic handlers: fork-per-request
    CGI, persistent (FastCGI-style) processes, and in-process library
    modules.  With a 30%-capped CGI-parent container, the two
    process-based mechanisms keep static throughput intact; the
    in-process module stalls the single-threaded server for each burst
    even though its *accounting* is equally correct -- protection and
    resource management are separate axes, the paper's whole thesis.
    """
    from repro.apps.httpserver import CgiPolicy, EventDrivenServer

    measure_s = 4.0 if fast else 10.0
    cgi_burst_us = 200_000.0  # shorter bursts than Fig. 12 for runtime
    mechanisms = [
        ("fork CGI", dict()),
        ("persistent (FastCGI)", dict(persistent_workers=2)),
        ("in-process module", dict(in_process=True)),
    ]
    curve = new_series("static req/s under CGI load")
    for label, kwargs in mechanisms:
        host = make_host(SystemMode.RC, seed=26)
        cgi = CgiPolicy(cpu_us=cgi_burst_us, cpu_limit=0.3, **kwargs)
        server = EventDrivenServer(
            host.kernel, use_containers=True, cgi=cgi
        )
        server.install()
        meter = ThroughputMeter()
        server.stats.meter = meter
        static_clients(host, 25)
        from repro.experiments.common import cgi_clients

        cgi_clients(host, 2)
        host.run(until_us=host.sim.now + 1_000_000.0)
        meter.start(host.sim.now)
        host.run(until_us=host.sim.now + measure_s * 1e6)
        meter.stop(host.sim.now)
        curve.add(mechanisms.index((label, kwargs)), meter.rate_per_second())
    result = FigureResult(
        title="Ablation: CGI dispatch mechanisms (static req/s; "
        "0=fork, 1=FastCGI, 2=in-process)",
        x_label="mechanism",
        series=[curve],
    )
    return result


# ---------------------------------------------------------------------------
# 6. SMP scaling (the section-2 multiprocessor variant)
# ---------------------------------------------------------------------------


def run_smp_scaling(fast: bool = True, cpu_counts=None) -> FigureResult:
    """Thread-pool server throughput vs. processor count.

    The paper's experiments are uniprocessor; this ablation exercises
    the SMP extension: a multi-threaded server's capacity grows with
    cores until the *per-process kernel network thread* becomes the
    bottleneck -- protocol processing (~200 us per connection-per-request
    transaction) is serialised through one thread in the paper's design
    (section 5.1), which caps this workload near 5,000 req/s regardless
    of further cores.  A faithful scaling limit, not a simulator
    artefact."""
    from repro.apps.httpserver import MultiThreadedServer

    if cpu_counts is None:
        cpu_counts = [1, 2, 4]
    measure_s = 1.0 if fast else 3.0
    curve = new_series("MT server throughput")
    for n_cpus in cpu_counts:
        config = KernelConfig(mode=SystemMode.RC, n_cpus=n_cpus)
        host = make_host(SystemMode.RC, seed=25, config=config)
        server = MultiThreadedServer(host.kernel, n_threads=4 * n_cpus)
        server.install()
        meter = ThroughputMeter()
        server.stats.meter = meter
        static_clients(host, 30 * n_cpus)
        host.run(until_us=host.sim.now + 500_000.0)
        meter.start(host.sim.now)
        host.run(until_us=host.sim.now + measure_s * 1e6)
        meter.stop(host.sim.now)
        curve.add(n_cpus, meter.rate_per_second())
    return FigureResult(
        title="Ablation: SMP scaling (req/s vs processors)",
        x_label="CPUs",
        series=[curve],
    )


def run(fast: bool = True) -> dict:
    """Run every ablation."""
    return {
        "livelock": run_livelock(fast=fast),
        "event_api": run_event_api(fast=fast),
        "pruning": run_pruning(fast=fast),
        "scheduler_policies": run_scheduler_policies(fast=fast),
        "cgi_mechanisms": run_cgi_mechanisms(fast=fast),
        "smp": run_smp_scaling(fast=fast),
    }


def main() -> None:
    """Print all ablation results."""
    results = run(fast=False)
    print(results["livelock"].render())
    print()
    print(results["event_api"].render())
    print()
    print(results["pruning"].render())
    print()
    print("Ablation: proportional-share policies (3:1 target)")
    for item in results["scheduler_policies"]:
        print(item.render())
    print()
    print(results["cgi_mechanisms"].render())
    print()
    print(results["smp"].render())


if __name__ == "__main__":
    main()
