"""Section 5.8: isolation of virtual (guest) servers.

Three guest Web servers (the Rent-A-Server scenario [45]) run under
three top-level fixed-share containers.  Client fleets of very
different sizes -- including CGI load -- hammer all three; the paper
observes that "the total CPU time consumed by each guest server exactly
matched its allocation" and that each guest re-divides its own share
internally because the container hierarchy is recursive.

We verify both: per-guest CPU share vs. its allocation, and a nested
CGI sandbox *inside* one guest staying within its sub-limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import SystemMode, fixed_share_attrs
from repro.apps.httpserver import CgiPolicy, EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.core.hierarchy import subtree_usage
from repro.experiments import sweep
from repro.experiments.common import (
    CGI_PATH,
    STATIC_PATH,
    CpuShareTracker,
    make_host,
)
from repro.net.packet import ip_addr

#: (name, guaranteed share, #static clients, #cgi clients, port)
GUESTS = [
    ("guest-a", 0.50, 30, 1, 8001),
    ("guest-b", 0.30, 20, 1, 8002),
    ("guest-c", 0.20, 10, 0, 8003),
]

#: Nested sandbox inside guest-a: its CGI may use at most 20% of the
#: *machine* (i.e. 40% of guest-a's half).
NESTED_CGI_LIMIT = 0.10


@dataclass
class GuestShare:
    """Observed vs. allocated CPU share for one guest."""

    name: str
    allocated: float
    observed: float


@dataclass
class VirtualServerResult:
    """Shares for every guest plus the nested-sandbox check."""

    guests: list
    nested_cgi_share: float
    nested_cgi_limit: float

    def render(self) -> str:
        lines = [
            "Section 5.8: virtual server isolation",
            f"{'Guest':12s}{'Allocated':>12s}{'Observed':>12s}",
        ]
        for guest in self.guests:
            lines.append(
                f"{guest.name:12s}{guest.allocated:>11.0%}{guest.observed:>11.1%}"
            )
        lines.append(
            f"nested CGI sandbox in guest-a: {self.nested_cgi_share:.1%}"
            f" observed vs {self.nested_cgi_limit:.0%} limit"
        )
        return "\n".join(lines)


def grid(fast: bool = True, seed: int = 58) -> list:
    """The experiment as a (single-point) grid: one full guest run."""
    return [sweep.point("virtual", seed=seed, fast=fast)]


def run(fast: bool = True, seed: int = 58, jobs: int = 1,
        cache: bool = True) -> VirtualServerResult:
    """Run the three-guest isolation experiment (via the sweep engine)."""
    return sweep.run_points(
        grid(fast=fast, seed=seed), jobs=jobs, cache=cache
    )[0]


@sweep.point_runner("virtual")
def run_guest_point(fast: bool = True, seed: int = 58) -> VirtualServerResult:
    """One complete three-guest run (the grid's only point)."""
    warmup_s = 2.0
    measure_s = 6.0 if fast else 20.0
    host = make_host(SystemMode.RC, seed=seed)
    guest_roots = []
    trackers = []
    for index, (name, share, n_static, n_cgi, port) in enumerate(GUESTS):
        root = host.kernel.containers.create(
            f"guest-root:{name}", attrs=fixed_share_attrs(share)
        )
        guest_roots.append(root)
        cgi = CgiPolicy(cpu_limit=NESTED_CGI_LIMIT) if name == "guest-a" else (
            CgiPolicy() if n_cgi else None
        )
        server = EventDrivenServer(
            host.kernel,
            port=port,
            use_containers=True,
            event_api="select",
            cgi=cgi,
            container_parent_cid=root.cid,
            name=name,
        )
        # The guest's process default container must live under the
        # guest root so *all* its consumption counts against the share.
        server.process = host.kernel.spawn_process(
            name, server.main, parent_container=root
        )
        base = ip_addr(10, 20 + index, 0, 1)
        for client_index in range(n_static):
            HttpClient(
                host.kernel,
                src_addr=base + client_index,
                name=f"{name}-s{client_index}",
                path=STATIC_PATH,
                server_port=port,
            ).start(at_us=client_index * 200.0)
        for client_index in range(n_cgi):
            HttpClient(
                host.kernel,
                src_addr=base + 1000 + client_index,
                name=f"{name}-c{client_index}",
                path=CGI_PATH,
                server_port=port,
                timeout_us=300_000_000.0,
            ).start(at_us=1_000.0 + client_index * 200.0)
        tracker = CpuShareTracker(
            host.kernel.containers,
            lambda c, tag=name: c.name.startswith(f"guest-root:{tag}")
            or c.name.startswith(f"proc:{tag}")
            or c.name.startswith(f"{tag}:"),
        )
        trackers.append(tracker)
    nested_tracker = CpuShareTracker(
        host.kernel.containers,
        lambda c: c.name.startswith("guest-a:cgi"),
    )
    host.run(until_us=host.sim.now + warmup_s * 1e6)
    for tracker in trackers:
        tracker.start_window(host.sim.now)
    nested_tracker.start_window(host.sim.now)
    start_subtree = [subtree_usage(root).cpu_us for root in guest_roots]
    host.run(until_us=host.sim.now + measure_s * 1e6)
    now = host.sim.now
    guests = []
    for (name, share, _ns, _nc, _port), tracker, root, base_cpu in zip(
        GUESTS, trackers, guest_roots, start_subtree
    ):
        # Subtree usage covers containers still alive under the guest
        # root; the tracker additionally catches destroyed ones, so use
        # the tracker (its predicate spans the same set by name).
        guests.append(
            GuestShare(
                name=name,
                allocated=share,
                observed=tracker.window_share(now),
            )
        )
    return VirtualServerResult(
        guests=guests,
        nested_cgi_share=nested_tracker.window_share(now),
        nested_cgi_limit=NESTED_CGI_LIMIT,
    )


def main() -> None:
    """Print the section 5.8 table."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
