"""Table 1: cost of resource container primitives.

The paper measures each primitive with a user-level program invoking the
system call 10,000 times and dividing the elapsed time.  We do exactly
that *inside the simulation*: a thread issues each primitive 10,000
times and we report the mean simulated cost, which should land on the
paper's measured values (they are the calibration source).  We also
report the wall-clock cost of our Python implementation of each
primitive, measured the same way, as the "implementation" column --
pytest-benchmark covers those numbers in ``benchmarks/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import SystemMode
from repro.core.attributes import timeshare_attrs
from repro.experiments.common import make_host
from repro.syscall import api

ITERATIONS = 10_000

#: (table row label, factory building the per-iteration syscalls).
#: Each factory receives the fds prepared by the setup phase.
_ROWS = [
    "create resource container",
    "destroy resource container",
    "change thread's resource binding",
    "obtain container resource usage",
    "set/get container attributes",
    "move container between processes",
    "obtain handle for existing container",
]


@dataclass
class Table1Result:
    """Per-primitive mean costs."""

    #: row -> paper-reported microseconds (Table 1).
    paper_us: dict
    #: row -> mean simulated microseconds measured via the syscall layer.
    simulated_us: dict

    def render(self) -> str:
        lines = [
            "Table 1: Cost of resource container primitives",
            f"{'Operation':42s}{'Paper (us)':>12s}{'Measured (us)':>15s}",
        ]
        for row in _ROWS:
            lines.append(
                f"{row:42s}{self.paper_us[row]:>12.2f}"
                f"{self.simulated_us[row]:>15.2f}"
            )
        return "\n".join(lines)


def _measure(host, op_factory, iterations=ITERATIONS) -> float:
    """Mean simulated cost of one primitive over many iterations."""
    result = {}

    def bench_main():
        yield from op_factory.setup()
        start = yield api.GetTime()
        yield from op_factory.loop(iterations)
        end = yield api.GetTime()
        overhead = yield from op_factory.per_iter_overhead_us()
        result["mean"] = (end - start) / iterations - overhead

    host.kernel.spawn_process("bench", bench_main)
    host.run(until_us=host.sim.now + 60_000_000.0)
    return result["mean"]


class _Bench:
    """Base: no setup, no per-iteration overhead correction."""

    def setup(self):
        return
        yield  # pragma: no cover

    def per_iter_overhead_us(self):
        return 0.0
        yield  # pragma: no cover


class _CreateDestroy(_Bench):
    """create+destroy per iteration; attribute the asked-for half."""

    def __init__(self, costs, want: str) -> None:
        self.costs = costs
        self.want = want

    def loop(self, n):
        for _ in range(n):
            fd = yield api.ContainerCreate("t")
            yield api.Close(fd)

    def per_iter_overhead_us(self):
        # Each iteration pays create + destroy; subtract the half we are
        # not measuring (closing a container descriptor *is* the destroy
        # primitive in this kernel's cost model).
        ops = self.costs.container_ops
        return ops.destroy if self.want == "create" else ops.create
        yield  # pragma: no cover


class _Rebind(_Bench):
    def __init__(self) -> None:
        self.fd_a = None
        self.fd_b = None

    def setup(self):
        self.fd_a = yield api.ContainerCreate("a")
        self.fd_b = yield api.ContainerCreate("b")

    def loop(self, n):
        for i in range(n):
            yield api.ContainerBindThread(self.fd_a if i % 2 == 0 else self.fd_b)


class _GetUsage(_Bench):
    def setup(self):
        self.fd = yield api.ContainerCreate("u")

    def loop(self, n):
        for _ in range(n):
            yield api.ContainerGetUsage(self.fd, recursive=False)


class _Attrs(_Bench):
    def setup(self):
        self.fd = yield api.ContainerCreate("attrs")
        self.attrs = timeshare_attrs(priority=7)

    def loop(self, n):
        for i in range(n):
            if i % 2 == 0:
                yield api.ContainerSetAttrs(self.fd, self.attrs)
            else:
                yield api.ContainerGetAttrs(self.fd)


class _Move(_Bench):
    def __init__(self, peer_pid_holder) -> None:
        self.peer = peer_pid_holder

    def setup(self):
        self.fd = yield api.ContainerCreate("mv")

    def loop(self, n):
        for _ in range(n):
            yield api.ContainerSendTo(self.fd, self.peer["pid"])


class _GetHandle(_Bench):
    def __init__(self) -> None:
        self.cid = None

    def setup(self):
        fd = yield api.ContainerCreate("h")
        usage = yield api.ContainerGetUsage(fd, recursive=False)
        del usage
        # Learn the cid through a handle round-trip: create returns a
        # descriptor; the cid is what GetHandle wants.  The harness
        # fetches it out-of-band below.
        self.fd = fd

    def loop(self, n):
        for _ in range(n):
            hfd = yield api.ContainerGetHandle(self.cid)
            yield api.Close(hfd)

    def per_iter_overhead_us(self):
        return 0.0  # close of a still-referenced container: just close
        yield  # pragma: no cover


def run() -> Table1Result:
    """Measure every Table 1 primitive through the syscall layer."""
    simulated = {}
    paper = None

    def fresh_host():
        return make_host(SystemMode.RC, seed=7)

    # create / destroy -----------------------------------------------------
    for want, row in (("create", _ROWS[0]), ("destroy", _ROWS[1])):
        host = fresh_host()
        paper = host.kernel.costs.container_ops.as_table()
        simulated[row] = _measure(host, _CreateDestroy(host.kernel.costs, want))

    # rebind ----------------------------------------------------------------
    host = fresh_host()
    simulated[_ROWS[2]] = _measure(host, _Rebind())

    # usage -----------------------------------------------------------------
    host = fresh_host()
    simulated[_ROWS[3]] = _measure(host, _GetUsage())

    # attrs -----------------------------------------------------------------
    host = fresh_host()
    simulated[_ROWS[4]] = _measure(host, _Attrs())

    # move between processes --------------------------------------------------
    host = fresh_host()
    peer = {}

    def peer_main():
        def body():
            yield api.Sleep(120_000_000.0)

        return body()

    peer_proc = host.kernel.spawn_process("peer", peer_main)
    peer["pid"] = peer_proc.pid
    simulated[_ROWS[5]] = _measure(host, _Move(peer))

    # get handle ---------------------------------------------------------------
    host = fresh_host()
    bench = _GetHandle()
    # Pre-create the target container kernel-side so the cid is known.
    target = host.kernel.containers.create("handle-target")
    bench.cid = target.cid
    bench.setup = lambda: iter(())  # nothing to do in-thread
    # Each iteration is GetHandle + Close(container) = handle + destroy
    # cost; subtract the destroy (release) half.
    release_cost = host.kernel.costs.container_ops.destroy
    bench.per_iter_overhead_us = lambda: _const_gen(release_cost)
    simulated[_ROWS[6]] = _measure(host, bench)

    return Table1Result(paper_us=paper, simulated_us=simulated)


def _const_gen(value):
    """A degenerate generator-function result returning a constant."""
    return value
    yield  # pragma: no cover


def wallclock_microbench() -> dict:
    """Wall-clock cost of our Python implementation of each primitive
    (manager level, no simulation), 10,000 iterations each."""
    from repro.core.operations import ContainerManager

    results = {}
    manager = ContainerManager()

    def timeit(fn, n=ITERATIONS):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n * 1e6

    results["create+destroy"] = timeit(
        lambda: manager.release(manager.create("x"))
    )
    stable = manager.create("stable")
    results["get usage"] = timeit(lambda: manager.get_usage(stable))
    attrs = timeshare_attrs(priority=3)
    results["set attributes"] = timeit(
        lambda: manager.set_attributes(stable, attrs)
    )
    results["lookup handle"] = timeit(lambda: manager.lookup(stable.cid))
    return results


def main() -> None:
    """Print the Table 1 comparison."""
    print(run().render())
    print()
    print("Python-implementation wall-clock (manager level):")
    for key, value in wallclock_microbench().items():
        print(f"  {key:24s}{value:8.2f} us/op")


if __name__ == "__main__":
    main()
