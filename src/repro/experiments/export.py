"""Result export: figures and tables as JSON or CSV.

The experiment harnesses return structured results; this module
serialises them so plots can be regenerated outside the simulator
(matplotlib, gnuplot, a spreadsheet) without re-running anything.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any

from repro.experiments.common import FigureResult
from repro.metrics.stats import Series


def figure_to_dict(figure: FigureResult) -> dict:
    """Plain-dict form of a figure (JSON-ready)."""
    return {
        "title": figure.title,
        "x_label": figure.x_label,
        "series": [
            {"label": series.label, "points": [list(p) for p in series.points]}
            for series in figure.series
        ],
    }


def figure_to_json(figure: FigureResult, indent: int = 2) -> str:
    """JSON rendering of a figure."""
    return json.dumps(figure_to_dict(figure), indent=indent)


def figure_to_csv(figure: FigureResult) -> str:
    """CSV rendering: one row per x value, one column per series."""
    xs = sorted({x for series in figure.series for x in series.xs()})
    by_series = [dict(series.points) for series in figure.series]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([figure.x_label] + [s.label for s in figure.series])
    for x in xs:
        row: list[Any] = [x]
        for mapping in by_series:
            value = mapping.get(x)
            row.append("" if value is None else value)
        writer.writerow(row)
    return buffer.getvalue()


def result_to_json(result: Any, indent: int = 2) -> str:
    """Best-effort JSON for any experiment result object.

    FigureResults nest properly; dataclasses are converted with
    ``asdict``; objects exposing ``render()`` fall back to their text
    table under a ``"rendered"`` key.
    """
    return json.dumps(_to_jsonable(result), indent=indent)


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, FigureResult):
        return figure_to_dict(value)
    if isinstance(value, Series):
        return {"label": value.label, "points": [list(p) for p in value.points]}
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if is_dataclass(value) and not isinstance(value, type):
        return {
            key: _to_jsonable(item) for key, item in asdict(value).items()
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "render"):
        return {"rendered": value.render()}
    return repr(value)
