"""Observability overhead benchmark: ``python -m repro bench-obs``.

PR 6 pinned the engine's hot paths; PR 9 hangs a telemetry pipeline
off the trace bus.  This benchmark prices that, on the two standard
workloads, across three instrumentation modes:

* ``off``      -- no observability attached (the PR 6 fast path: one
  ``trace.active`` predicate per instrumented site, no records built);
* ``observe``  -- the PR 4 registry/profiler/tracer collectors;
* ``windows``  -- collectors plus the PR 9 windowed time-series
  pipeline, SLO rules, and watchdog (100 ms tumbling windows).

Workloads:

* ``drain``      -- the 1000-container pre-armed event backlog from
  ``bench-engine``: pure event-loop dispatch, no instrumented sites
  fire, so any cost here is pipeline *attachment* overhead;
* ``end_to_end`` -- a full RC kernel with 100 CPU-bound processes for
  one simulated second: every slice publishes ``cpu.slice``, the
  worst realistic record rate per simulated second.

Writes ``BENCH_obs.json``.  The perf floor
(``benchmarks/test_obs_perf.py``) pins: trace-off overhead within
noise of running without this PR at all, and windows-on at most 10%
over plain observe on the end-to-end point.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.bench_engine import _drain_sim, _spinner_body
from repro.obs import observe

#: Best-of repeats per cell (same protocol as the other benches).
REPEATS = 3

#: The drain workload: 1000 containers' worth of pre-armed events.
DRAIN_CONTAINERS = 1000
DRAIN_EVENTS = 100_000

#: The end-to-end workload: full RC kernel, CPU-bound processes.  The
#: horizon is long enough that one repeat takes a few hundred ms of
#: wall time -- short runs drown the mode deltas in timer noise.
E2E_PROCESSES = 100
E2E_HORIZON_US = 3_000_000.0

#: Window span used by the ``windows`` mode.
WINDOW_US = 100_000.0

MODES = ("off", "observe", "windows")


def _drain_point(mode: str) -> dict:
    """Dispatch the pre-armed backlog under one instrumentation mode."""
    best = None
    for _ in range(REPEATS):
        sim = _drain_sim(None, DRAIN_CONTAINERS, DRAIN_EVENTS + 2_000)
        if mode != "off":
            observe.Observability(
                sim,
                register=False,
                window_us=WINDOW_US if mode == "windows" else 0.0,
            )
        sim.run(max_events=2_000)  # warm pools, caches, and wheels
        started = time.perf_counter()
        sim.run(max_events=DRAIN_EVENTS)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return {
        "mode": mode,
        "containers": DRAIN_CONTAINERS,
        "events": DRAIN_EVENTS,
        "wall_s": round(best, 6),
        "events_per_sec": round(DRAIN_EVENTS / best, 1),
    }


def _e2e_once(mode: str) -> tuple:
    """One timed run of the full-kernel spinner workload under ``mode``."""
    from repro import Host, SystemMode

    previous = os.environ.get(observe.WINDOWS_ENV)
    if mode == "windows":
        os.environ[observe.WINDOWS_ENV] = f"{WINDOW_US:g}"
    elif previous is not None:
        del os.environ[observe.WINDOWS_ENV]
    try:
        host = Host(mode=SystemMode.RC, seed=7, observe=(mode != "off"))
    finally:
        if previous is None:
            os.environ.pop(observe.WINDOWS_ENV, None)
        else:
            os.environ[observe.WINDOWS_ENV] = previous
    body = _spinner_body(800.0)
    for index in range(E2E_PROCESSES):
        host.kernel.spawn_process(f"spin{index}", body)
    started = time.perf_counter()
    host.sim.run(until=E2E_HORIZON_US)
    elapsed = time.perf_counter() - started
    events = host.sim.events_dispatched
    # Release this run's host before the next cell runs: bench hosts
    # never export, and keeping their slice buffers alive skews later
    # cells with garbage-collector pressure.
    observe.drain_installed()
    return elapsed, events


def _e2e_points() -> list:
    """All end-to-end cells, repeats interleaved round-robin across the
    modes so machine-speed drift during the bench biases every mode
    alike (sequential per-mode repeats read drift as mode overhead)."""
    best: dict = {}
    for _ in range(REPEATS):
        for mode in MODES:
            elapsed, events = _e2e_once(mode)
            if mode not in best or elapsed < best[mode][0]:
                best[mode] = (elapsed, events)
    points = []
    for mode in MODES:
        elapsed, events = best[mode]
        points.append(
            {
                "mode": mode,
                "processes": E2E_PROCESSES,
                "sim_seconds": E2E_HORIZON_US / 1e6,
                "wall_s": round(elapsed, 6),
                "events": events,
                "events_per_sec": round(events / elapsed, 1),
            }
        )
    return points


def _overhead(points: list) -> dict:
    """Relative overhead of each mode vs ``off`` (and windows vs observe)."""
    by_mode = {point["mode"]: point["wall_s"] for point in points}
    off = by_mode["off"]
    out = {
        "observe_vs_off": round(by_mode["observe"] / off - 1.0, 4),
        "windows_vs_off": round(by_mode["windows"] / off - 1.0, 4),
        "windows_vs_observe": round(
            by_mode["windows"] / by_mode["observe"] - 1.0, 4
        ),
    }
    return out


def run() -> dict:
    """All cells; returns the BENCH_obs document."""
    drain = [_drain_point(mode) for mode in MODES]
    e2e = _e2e_points()
    return {
        "drain": drain,
        "end_to_end": e2e,
        "overheads": {
            "drain": _overhead(drain),
            "end_to_end": _overhead(e2e),
        },
    }


def render(result: dict) -> str:
    lines = ["Observability overhead (best of {} runs)".format(REPEATS)]
    for section in ("drain", "end_to_end"):
        lines.append(f"\n-- {section} --")
        lines.append(f"{'mode':10s}{'wall s':>12s}{'events/s':>16s}")
        for point in result[section]:
            lines.append(
                f"{point['mode']:10s}{point['wall_s']:>12.4f}"
                f"{point['events_per_sec']:>16,.0f}"
            )
        overheads = result["overheads"][section]
        lines.append(
            "overhead: observe {:+.1%}, windows {:+.1%} "
            "(windows vs observe {:+.1%})".format(
                overheads["observe_vs_off"],
                overheads["windows_vs_off"],
                overheads["windows_vs_observe"],
            )
        )
    return "\n".join(lines)


def write_json(result: dict, path: str = "BENCH_obs.json") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> None:
    result = run()
    print(render(result))
    print(f"[wrote {write_json(result)}]")


if __name__ == "__main__":
    main()
