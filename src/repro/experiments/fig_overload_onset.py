"""Overload onset: burn-rate alerts fire before throughput collapses.

The paper's end-of-run figures (Fig. 14) show *that* a SYN flood
destroys an unmodified server's throughput; they cannot show *when the
system knew*.  This experiment puts the PR 9 streaming-telemetry layer
on the same scenario and ramps the flood instead of holding it
constant: a clean baseline, then stepwise-increasing SYN rates up to
well past the CPU-saturation point.

The claim under test: the SLO engine's multi-window **burn-rate**
alerts (SYN-drop budget, latency budget) fire strictly *before* the
window where useful throughput collapses, because the listen backlog
fills and starts shedding SYNs at rates far below CPU saturation --
a leading indicator that end-of-run totals average away entirely.

Each point boots one host with windowed telemetry attached
(:meth:`~repro.kernel.kernel.Kernel.attach_observability`), drives the
ramp, and reduces the pipeline's rollups and alerts to a JSON record:
per-window rates, the alert log, the collapse window, and the lead
time between first burn-rate alert and collapse.  ``python -m repro
monitor fig_overload_onset`` re-runs the same points with dashboard
export; the tier-0g verify gate pins the monitor JSONL byte-identical
across seeded runs.
"""

from __future__ import annotations

from repro import SystemMode
from repro.apps.httpserver import EventDrivenServer, ListenSpec, SynFloodDefense
from repro.apps.synflood import SynFlooder
from repro.experiments import sweep

#: Throughput collapse: a post-flood window delivering less than this
#: fraction of the clean-baseline request rate.
COLLAPSE_FRACTION = 0.5

#: Telemetry window span (sim us) used by every point.
WINDOW_US = 100_000.0


@sweep.point_runner("fig_overload_onset")
def _run_point(
    defended: bool,
    peak_rate: float,
    ramp_steps: int,
    baseline_s: float,
    step_s: float,
    tail_s: float,
    seed: int = 23,
) -> dict:
    """One ramped-flood run reduced to its telemetry story."""
    from repro.experiments.common import make_host, static_clients

    mode = SystemMode.RC if defended else SystemMode.UNMODIFIED
    host = make_host(mode, seed=seed)
    obs = host.kernel.attach_observability(window_us=WINDOW_US)
    if defended:
        server = EventDrivenServer(
            host.kernel,
            specs=[ListenSpec("default", notify_syn_drop=True)],
            use_containers=True,
            event_api="eventapi",
            defense=SynFloodDefense(threshold=5),
        )
    else:
        server = EventDrivenServer(
            host.kernel, use_containers=False, event_api="select"
        )
    server.install()
    static_clients(host, 25, timeout_us=400_000.0)
    # The ramp: the flood starts after a clean baseline at 1/ramp_steps
    # of the peak and steps up to the full peak.  SynFlooder re-reads
    # rate_per_sec on every batch tick, so mutating it reshapes the
    # arrival process from the next tick on.
    flooder = SynFlooder(
        host.kernel,
        rate_per_sec=peak_rate / ramp_steps,
        batch=8,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=baseline_s * 1e6)

    def _step_to(rate: float):
        def apply() -> None:
            flooder.rate_per_sec = rate
        return apply

    for step in range(1, ramp_steps):
        host.sim.at(
            (baseline_s + step * step_s) * 1e6,
            _step_to(peak_rate * (step + 1) / ramp_steps),
        )
    total_s = baseline_s + ramp_steps * step_s + tail_s
    host.run(seconds=total_s)
    obs.finish()
    return _reduce(obs, baseline_s=baseline_s)


def _reduce(obs, baseline_s: float) -> dict:
    """Collapse pipeline state into the point's JSON result."""
    pipeline = obs.pipeline
    windows = []
    for rollup in pipeline.rollups:
        p99 = None
        for key, summary in rollup.latency.items():
            if key[1] == "client" and key[2] == "latency_us":
                if p99 is None or summary["p99"] > p99:
                    p99 = summary["p99"]
        windows.append(
            {
                "t_s": rollup.end_us / 1e6,
                "req_rate": rollup.rate_sum("app", "requests"),
                "syn_rate": rollup.rate_sum("net", "syns"),
                "syn_drop_rate": rollup.rate_sum("net", "syn_drops"),
                "p99_ms": p99 / 1e3 if p99 is not None else None,
            }
        )
    alerts = [
        {
            "t_s": alert.time_us / 1e6,
            "rule": alert.rule,
            "kind": alert.kind,
            "severity": alert.severity,
        }
        for alert in pipeline.alerts
    ]
    baseline_windows = [
        w["req_rate"] for w in windows if w["t_s"] <= baseline_s
    ]
    baseline_rate = (
        sum(baseline_windows) / len(baseline_windows)
        if baseline_windows
        else 0.0
    )
    collapse_s = None
    for window in windows:
        if window["t_s"] <= baseline_s:
            continue
        if window["req_rate"] < COLLAPSE_FRACTION * baseline_rate:
            collapse_s = window["t_s"]
            break
    first_burn_alert_s = None
    for alert in alerts:
        if alert["kind"] == "burn_rate":
            first_burn_alert_s = alert["t_s"]
            break
    return {
        "windows": windows,
        "alerts": alerts,
        "baseline_rate": baseline_rate,
        "collapse_s": collapse_s,
        "first_burn_alert_s": first_burn_alert_s,
        "worst_health": obs.watchdog.worst_state(),
    }


def grid(fast: bool = True) -> list:
    """One ramped-flood point per mode (unmodified is the headline)."""
    ramp_steps = 4 if fast else 8
    return [
        sweep.point(
            "fig_overload_onset",
            seed=23,
            defended=defended,
            peak_rate=20_000.0,
            ramp_steps=ramp_steps,
            baseline_s=1.0,
            step_s=0.5 if fast else 1.0,
            tail_s=0.5,
        )
        for defended in (False, True)
    ]


class OnsetResult:
    """Render of the overload-onset comparison."""

    def __init__(self, by_mode: dict) -> None:
        self.by_mode = by_mode

    def render(self) -> str:
        lines = [
            "Overload onset under a ramped SYN flood "
            "(burn-rate alerts vs throughput collapse)",
            f"{'mode':14s}{'baseline req/s':>16s}{'1st burn alert':>16s}"
            f"{'collapse':>12s}{'lead':>10s}{'health':>12s}",
        ]
        for mode, result in self.by_mode.items():
            burn = result["first_burn_alert_s"]
            collapse = result["collapse_s"]
            lead = (
                f"{collapse - burn:.1f}s"
                if burn is not None and collapse is not None
                else "-"
            )
            lines.append(
                f"{mode:14s}"
                f"{result['baseline_rate']:>16.1f}"
                f"{(f'{burn:.1f}s' if burn is not None else '-'):>16s}"
                f"{(f'{collapse:.1f}s' if collapse is not None else 'none'):>12s}"
                f"{lead:>10s}"
                f"{result['worst_health']:>12s}"
            )
        return "\n".join(lines)


def run(fast: bool = True, jobs: int = 1, cache: bool = True) -> OnsetResult:
    """Run the onset comparison for both modes."""
    points = grid(fast=fast)
    values = sweep.run_points(points, jobs=jobs, cache=cache)
    by_mode = {}
    for point, value in zip(points, values):
        params = dict(point.params)
        mode = "defended" if params["defended"] else "unmodified"
        by_mode[mode] = value
    return OnsetResult(by_mode)


def main() -> None:
    print(run(fast=True).render())


if __name__ == "__main__":
    main()
