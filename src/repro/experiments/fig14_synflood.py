"""Figure 14: server behaviour under a SYN-flood attack.

Malicious clients flood the HTTP port with bogus SYNs while
well-behaved clients request a cached 1 KB document.

* **Unmodified system** -- every bogus SYN gets full protocol processing
  at software-interrupt priority (~80 us); useful throughput collapses
  and is effectively zero by roughly 10,000 SYNs/sec.
* **With resource containers** -- the kernel notifies the server of SYN
  drops; the server isolates the attacking subnet onto a filtered
  listen socket bound to a priority-zero container.  Each subsequent
  bogus SYN then costs only interrupt + packet filter (~3.9 us), so at
  70,000 SYNs/sec the server still delivers ~73% of its maximum
  throughput.
"""

from __future__ import annotations

from repro import SystemMode
from repro.apps.httpserver import EventDrivenServer, ListenSpec, SynFloodDefense
from repro.apps.synflood import SynFlooder
from repro.experiments import sweep
from repro.experiments.common import (
    FigureResult,
    make_host,
    new_series,
    static_clients,
)
from repro.metrics.stats import ThroughputMeter


@sweep.point_runner("fig14")
def _run_point(defended: bool, syn_rate: float,
               warmup_s: float, measure_s: float, seed: int = 14) -> float:
    """Useful static throughput (req/s) under one flood rate."""
    mode = SystemMode.RC if defended else SystemMode.UNMODIFIED
    host = make_host(mode, seed=seed)
    if defended:
        server = EventDrivenServer(
            host.kernel,
            specs=[ListenSpec("default", notify_syn_drop=True)],
            use_containers=True,
            event_api="eventapi",
            defense=SynFloodDefense(threshold=5),
        )
    else:
        server = EventDrivenServer(
            host.kernel, use_containers=False, event_api="select"
        )
    server.install()
    meter = ThroughputMeter()
    server.stats.meter = meter
    # Short client retry timeouts: the flood's onset disrupts in-flight
    # handshakes (realistically), and the steady state we measure should
    # not be dominated by clients parked in long TCP backoffs.
    static_clients(host, 25, timeout_us=400_000.0)
    if syn_rate > 0:
        flooder = SynFlooder(
            host.kernel,
            rate_per_sec=syn_rate,
            batch=10 if syn_rate >= 10_000 else 1,
            rng=host.sim.rng.fork("flood"),
        )
        flooder.start(at_us=50_000.0)
    host.run(until_us=host.sim.now + warmup_s * 1e6)
    meter.start(host.sim.now)
    host.run(until_us=host.sim.now + measure_s * 1e6)
    meter.stop(host.sim.now)
    return meter.rate_per_second()


def grid(fast: bool = True, rates=None) -> list:
    """Figure 14's point grid (defended and unmodified at each rate)."""
    if rates is None:
        rates = [0, 10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000]
        if not fast:
            rates = sorted(set(rates + [2_000, 5_000, 15_000]))
    warmup_s = 2.0
    measure_s = 3.0 if fast else 6.0
    return [
        sweep.point(
            "fig14",
            seed=14,
            defended=defended,
            syn_rate=float(rate),
            warmup_s=warmup_s,
            measure_s=measure_s,
        )
        for rate in rates
        for defended in (True, False)
    ]


def run(fast: bool = True, rates=None, jobs: int = 1,
        cache: bool = True) -> FigureResult:
    """Regenerate Figure 14."""
    grid_points = grid(fast=fast, rates=rates)
    values = sweep.run_points(grid_points, jobs=jobs, cache=cache)
    defended_curve = new_series("With Resource Containers")
    unmodified_curve = new_series("Unmodified System")
    for pt, value in zip(grid_points, values):
        params = dict(pt.params)
        curve = defended_curve if params["defended"] else unmodified_curve
        curve.add(params["syn_rate"] / 1000.0, value)
    return FigureResult(
        title="Fig. 14: throughput under SYN flood (req/s)",
        x_label="kSYN/s",
        series=[defended_curve, unmodified_curve],
    )


def main() -> None:
    """Print the Figure 14 table."""
    print(run(fast=False).render())


if __name__ == "__main__":
    main()
