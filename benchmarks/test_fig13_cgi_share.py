"""Benchmark: Figure 13 -- CPU share of CGI processing.

Shape criteria:

* the RC sandboxes pin the CGI share almost exactly at their caps
  (the paper: "the CPU limits are enforced almost exactly");
* LRP gives CGI processes their full fair share, n/(n+1);
* the unmodified system gives CGI *less* than n/(n+1) -- the server
  keeps extra real CPU because its kernel network processing is
  unaccounted.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig12_cgi

POINTS = [2, 4]


@pytest.fixture
def result(cgi_result):
    return cgi_result


def shares(figure, label_fragment):
    series = next(s for s in figure.series if label_fragment in s.label)
    return dict(series.points)


def test_fig13_report(result, repro_report):
    repro_report(result.fig13.render())


def test_rc_caps_enforced_almost_exactly(result):
    rc30 = shares(result.fig13, "RC System 1")
    rc10 = shares(result.fig13, "RC System 2")
    for n in POINTS:
        assert rc30[n] == pytest.approx(30.0, abs=1.5)
        assert rc10[n] == pytest.approx(10.0, abs=1.0)


def test_lrp_gives_fair_share(result):
    lrp = shares(result.fig13, "LRP")
    for n in POINTS:
        fair = 100.0 * n / (n + 1)
        assert lrp[n] == pytest.approx(fair, abs=12.0)


def test_unmodified_cgi_below_fair_share(result):
    """The misaccounting advantage: CGI gets less than n/(n+1)."""
    unmodified = shares(result.fig13, "Unmodified")
    for n in POINTS:
        fair = 100.0 * n / (n + 1)
        assert unmodified[n] < fair - 5.0


def test_lrp_share_exceeds_unmodified(result):
    lrp = shares(result.fig13, "LRP")
    unmodified = shares(result.fig13, "Unmodified")
    for n in POINTS:
        assert lrp[n] > unmodified[n]
