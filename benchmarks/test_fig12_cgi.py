"""Benchmark: Figure 12 -- static throughput with competing CGI load.

Shape criteria:

* unmodified throughput drops steeply with CGI count (to roughly half
  or less by n=4; the paper measured 44% of max);
* LRP drops *further* (fixing the misaccounting removes the server's
  hidden advantage);
* both RC sandboxes keep throughput nearly flat, with the 10% cap
  leaving more room than the 30% cap.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig12_cgi

POINTS = [0, 2, 4]


@pytest.fixture
def result(cgi_result):
    return cgi_result


def series_map(figure, label_fragment):
    series = next(s for s in figure.series if label_fragment in s.label)
    return dict(series.points)


def test_fig12_report(result, repro_report):
    repro_report(result.fig12.render())


def test_unmodified_throughput_halves(result):
    data = series_map(result.fig12, "Unmodified")
    assert data[4] < 0.55 * data[0]


def test_lrp_below_unmodified(result):
    unmodified = series_map(result.fig12, "Unmodified")
    lrp = series_map(result.fig12, "LRP")
    for n in (2, 4):
        assert lrp[n] < unmodified[n]


def test_rc_sandboxes_stay_flat(result):
    for label in ("RC System 1", "RC System 2"):
        data = series_map(result.fig12, label)
        assert data[4] > 0.9 * data[2]


def test_rc10_above_rc30(result):
    rc30 = series_map(result.fig12, "RC System 1")
    rc10 = series_map(result.fig12, "RC System 2")
    for n in (2, 4):
        assert rc10[n] > rc30[n]


def test_bench_fig12_point(benchmark):
    """Wall-clock cost of one Fig. 12 measurement point."""
    from repro import SystemMode

    benchmark.pedantic(
        lambda: fig12_cgi._run_point(SystemMode.RC, 0.3, 1, 1.0, 2.0),
        iterations=1,
        rounds=2,
    )
