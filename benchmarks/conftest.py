"""Benchmark-suite configuration.

Each benchmark module regenerates one table or figure of the paper; the
``--benchmark-only`` run therefore doubles as the reproduction harness.
Results are printed through pytest-benchmark's timing table *and* as the
paper-style data table (via the ``repro_report`` fixture), so the bench
output is directly comparable with the publication.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_sweep_cache(tmp_path_factory):
    """Point the sweep cache at a per-session scratch directory.

    Figure regenerations in this suite are *measurements*; serving them
    from a previously populated ``.sweepcache/`` would time the cache,
    not the simulator.
    """
    import os

    from repro.experiments import sweep

    scratch = tmp_path_factory.mktemp("sweepcache")
    previous = os.environ.get(sweep.CACHE_DIR_ENV)
    os.environ[sweep.CACHE_DIR_ENV] = str(scratch)
    yield
    if previous is None:
        os.environ.pop(sweep.CACHE_DIR_ENV, None)
    else:
        os.environ[sweep.CACHE_DIR_ENV] = previous


@pytest.fixture(autouse=True)
def _benchmark_everything(benchmark):
    """Pull the ``benchmark`` fixture into every test's closure.

    The shape-assertion tests in this suite validate the regenerated
    figures rather than time a function; without this, ``--benchmark-only``
    would skip them and the bench run would lose its pass/fail meaning.
    """
    yield


@pytest.fixture(scope="session")
def cgi_result():
    """One shared Fig. 12/13 regeneration (both figures come from the
    same runs; test_fig12 and test_fig13 must not pay for it twice)."""
    from repro.experiments import fig12_cgi

    return fig12_cgi.run(fast=True, points=[0, 2, 4])


@pytest.fixture(scope="session")
def repro_report():
    """Collects rendered result tables and prints them at session end."""
    tables: list[str] = []
    yield tables.append
    if tables:
        print("\n")
        print("=" * 72)
        print("REPRODUCED TABLES AND FIGURES")
        print("=" * 72)
        for table in tables:
            print()
            print(table)
