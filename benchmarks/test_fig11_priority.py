"""Benchmark: Figure 11 -- prioritised handling of clients.

Shape criteria (the paper's qualitative result):

* without containers, Thigh grows by an order of magnitude as
  low-priority clients saturate the server;
* with containers + select(), the rise is bounded and roughly linear
  (the select() scan);
* with containers + the scalable event API, Thigh stays nearly flat.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig11_priority

POINTS = [0, 10, 25, 35]


@pytest.fixture(scope="module")
def result():
    return fig11_priority.run(fast=True, points=POINTS)


def curve(result, label_fragment):
    series = next(s for s in result.series if label_fragment in s.label)
    return dict(series.points)


def test_fig11_report(result, repro_report):
    repro_report(result.render())


def test_unmodified_degrades_heavily(result):
    data = curve(result, "Without containers")
    assert data[35] / data[0] > 5.0


def test_containers_select_bounded(result):
    data = curve(result, "select()")
    assert data[35] / data[0] < 3.0
    # ...and far below the unmodified system at full load.
    unmodified = curve(result, "Without containers")
    assert data[35] < unmodified[35] / 3.0


def test_event_api_nearly_flat(result):
    data = curve(result, "event API")
    assert data[35] / data[0] < 1.5


def test_ordering_between_curves(result):
    """At saturation: unmodified > select > event API (paper's order)."""
    unmodified = curve(result, "Without containers")
    select = curve(result, "select()")
    event_api = curve(result, "event API")
    for load in (25, 35):
        assert unmodified[load] > select[load] >= event_api[load] * 0.95


def test_bench_fig11_point(benchmark):
    """Wall-clock cost of one Fig. 11 measurement point."""
    benchmark.pedantic(
        lambda: fig11_priority._run_point("eventapi", 10, 0.2, 0.5),
        iterations=1,
        rounds=3,
    )
