"""Benchmark: Table 1 -- cost of resource container primitives.

Two measurements per primitive:

* the **simulated** cost through the syscall layer (must land on the
  paper's measured microseconds -- they are the calibration source);
* the **wall-clock** cost of this library's Python implementation of
  the primitive, measured with pytest-benchmark exactly the way the
  paper measured its syscalls (many warm-cache iterations, mean).
"""

from __future__ import annotations

import pytest

from repro.core.attributes import timeshare_attrs
from repro.core.operations import ContainerManager
from repro.experiments import table1_primitives


@pytest.fixture(scope="module")
def table1_result():
    return table1_primitives.run()


def test_fig_table1_report(table1_result, repro_report):
    """Render the paper-vs-measured table."""
    repro_report(table1_result.render())
    for row, paper_value in table1_result.paper_us.items():
        measured = table1_result.simulated_us[row]
        assert measured == pytest.approx(paper_value, abs=0.02), row


# ---------------------------------------------------------------------------
# Wall-clock microbenchmarks of the implementation
# ---------------------------------------------------------------------------


@pytest.fixture
def manager():
    return ContainerManager()


def test_bench_create_destroy(benchmark, manager):
    benchmark(lambda: manager.release(manager.create("bench")))


def test_bench_rebind_thread(benchmark, manager):
    from repro.core.binding import BindingManager
    from tests.core.test_binding import _FakeThread

    bindings = BindingManager(lambda c: None)
    thread = _FakeThread()
    a = manager.create("a")
    b = manager.create("b")
    state = {"flip": False}

    def rebind():
        state["flip"] = not state["flip"]
        bindings.bind_thread(thread, a if state["flip"] else b, 0.0)

    benchmark(rebind)


def test_bench_get_usage(benchmark, manager):
    container = manager.create("u")
    benchmark(lambda: manager.get_usage(container, recursive=False))


def test_bench_get_usage_recursive_subtree(benchmark, manager):
    from repro.core.attributes import fixed_share_attrs

    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    for index in range(20):
        manager.create(f"leaf{index}", parent=parent)
    benchmark(lambda: manager.get_usage(parent))


def test_bench_set_attributes(benchmark, manager):
    container = manager.create("attrs")
    attrs = timeshare_attrs(priority=7)
    benchmark(lambda: manager.set_attributes(container, attrs))


def test_bench_lookup_handle(benchmark, manager):
    container = manager.create("h")
    benchmark(lambda: manager.lookup(container.cid))


def test_bench_charge_cpu_leaf_depth3(benchmark, manager):
    from repro.core.attributes import fixed_share_attrs

    top = manager.create("top", attrs=fixed_share_attrs(0.5))
    mid = manager.create("mid", attrs=fixed_share_attrs(0.5), parent=top)
    leaf = manager.create("leaf", parent=mid)
    benchmark(lambda: leaf.charge_cpu(1.0))
