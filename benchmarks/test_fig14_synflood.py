"""Benchmark: Figure 14 -- SYN-flood resilience.

Shape criteria:

* the unmodified system's useful throughput is effectively zero by
  roughly 10,000-30,000 SYNs/sec;
* the defended (resource containers + filter) system retains a large
  fraction of its throughput at 70,000 SYNs/sec -- the paper reports
  ~73%; we accept 60-85% (the residual cost is per-SYN interrupt plus
  packet filter, 3.9 us).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig14_synflood

RATES = [0, 10_000, 30_000, 70_000]


@pytest.fixture(scope="module")
def result():
    return fig14_synflood.run(fast=True, rates=RATES)


def curve(result, label_fragment):
    series = next(s for s in result.series if label_fragment in s.label)
    return dict(series.points)


def test_fig14_report(result, repro_report):
    repro_report(result.render())


def test_unmodified_collapses(result):
    data = curve(result, "Unmodified")
    assert data[10.0] < 0.35 * data[0.0]
    assert data[30.0] < 0.02 * data[0.0]
    assert data[70.0] < 0.02 * data[0.0]


def test_defended_retains_most_throughput(result):
    data = curve(result, "Resource Containers")
    retained = data[70.0] / data[0.0]
    assert 0.60 <= retained <= 0.90


def test_defended_beats_unmodified_at_every_rate(result):
    defended = curve(result, "Resource Containers")
    unmodified = curve(result, "Unmodified")
    for rate in (10.0, 30.0, 70.0):
        assert defended[rate] > unmodified[rate]


def test_defended_decline_tracks_demux_cost(result):
    """The defended slope should match the 3.9 us/SYN interrupt+filter
    theft: relative loss ~= rate * 3.9us."""
    data = curve(result, "Resource Containers")
    retained_at_70k = data[70.0] / data[0.0]
    predicted = 1.0 - 70_000 * 3.9e-6
    assert retained_at_70k == pytest.approx(predicted, abs=0.12)


def test_bench_fig14_point(benchmark):
    """Wall-clock cost of one Fig. 14 measurement point."""
    benchmark.pedantic(
        lambda: fig14_synflood._run_point(True, 20_000.0, 0.5, 1.0),
        iterations=1,
        rounds=2,
    )
