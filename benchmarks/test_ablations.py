"""Benchmarks: design-choice ablations (DESIGN.md section 4).

Not figures from the paper, but quantitative support for the design
decisions the paper argues from: LRP's overload stability, the event
API's scalability, scheduler-binding pruning, and proportional-share
policy choice.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations


def curve(figure, label_fragment):
    series = next(s for s in figure.series if label_fragment in s.label)
    return dict(series.points)


@pytest.fixture(scope="module")
def livelock():
    return ablations.run_livelock(fast=True)


def test_livelock_report(livelock, repro_report):
    repro_report(livelock.render())


def test_softirq_livelocks_lrp_survives(livelock):
    softirq = curve(livelock, "softirq")
    lrp = curve(livelock, "LRP")
    # At 20k overload pkts/s the softirq kernel is dead...
    assert softirq[20.0] < 0.02 * softirq[0.0]
    # ...while LRP still delivers sustained useful service.  (The
    # absolute level scales inversely with the per-socket queue depth --
    # deeper queues admit more bogus SYNs to full protocol processing --
    # so the assertion is about survival, not a specific fraction.)
    assert lrp[20.0] > 400.0
    assert lrp[15.0] > 400.0


@pytest.fixture(scope="module")
def event_api():
    return ablations.run_event_api(fast=True, conn_counts=[10, 250, 500])


def test_event_api_report(event_api, repro_report):
    repro_report(event_api.render())


def test_select_collapses_event_api_flat(event_api):
    select = curve(event_api, "select")
    scalable = curve(event_api, "event API")
    assert select[500] < 0.5 * select[10]
    assert scalable[500] > 0.9 * scalable[10]


def test_pruning_bounds_binding_sets(repro_report):
    result = ablations.run_pruning(fast=True)
    repro_report(result.render())
    assert result.max_with_pruning <= 3
    assert result.max_without_pruning >= 30


def test_scheduler_policies_hit_target(repro_report):
    results = ablations.run_scheduler_policies(fast=True)
    lines = ["Ablation: proportional-share policies (3:1 target)"]
    for item in results:
        lines.append(item.render())
        assert item.observed_major == pytest.approx(0.75, abs=0.05), item.policy
    repro_report("\n".join(lines))


def test_cgi_mechanisms_report(repro_report):
    result = ablations.run_cgi_mechanisms(fast=True)
    repro_report(result.render())
    data = dict(result.series[0].points)
    fork, fastcgi, in_process = data[0], data[1], data[2]
    # Process-based mechanisms preserve static service...
    assert fork > 1_000 and fastcgi > 1_000
    # ...while the in-process module stalls the event loop.
    assert in_process < 0.2 * fork


def test_smp_scaling_report(repro_report):
    result = ablations.run_smp_scaling(fast=True, cpu_counts=[1, 2])
    repro_report(result.render())
    data = dict(result.series[0].points)
    assert data[2] > 1.5 * data[1]


def test_bench_livelock_point(benchmark):
    benchmark.pedantic(
        lambda: ablations.run_livelock(fast=True, rates=[10_000]),
        iterations=1,
        rounds=1,
    )
