"""Tier-2 perf smoke: the event engine must stay fast at 1000 containers.

Run with ``pytest -m perf benchmarks/``.  The recorded numbers live in
``BENCH_engine.json`` at the repo root (regenerate with ``python -m
repro bench-engine``); the smoke tests re-measure the 1000-container
drain and steady points on the wheel queue and fail when they have
regressed more than 2x against the recording -- wide enough to absorb
machine noise, tight enough to catch the engine falling off its fast
path (the pre-fast-path engine was ~7x slower on drain, not 2x).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import bench_engine

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORDED = REPO_ROOT / "BENCH_engine.json"

#: Allowed slowdown vs the recorded run before the smoke test fails.
REGRESSION_FACTOR = 2.0


def _recorded() -> dict:
    if not RECORDED.exists():
        pytest.skip("BENCH_engine.json not recorded; run `python -m repro bench-engine`")
    return json.loads(RECORDED.read_text())


def _recorded_point(doc: dict, profile: str, containers: int) -> dict:
    for point in doc[profile]:
        if point["queue"] == "wheel" and point["containers"] == containers:
            return point
    raise AssertionError(f"no wheel point at {containers} in {profile}")


@pytest.mark.perf
def test_drain_1000_within_2x_of_recording(repro_report):
    recorded = _recorded_point(_recorded(), "drain", 1000)
    fresh = bench_engine.micro_point("drain", "wheel", 1000, events=50_000)
    repro_report(
        "perf smoke: drain@1000 wheel "
        f"{fresh['events_per_sec']:,.0f} ev/s vs recorded "
        f"{recorded['events_per_sec']:,.0f} ev/s"
    )
    assert fresh["events_per_sec"] * REGRESSION_FACTOR >= recorded["events_per_sec"], (
        f"drain throughput regressed: {fresh['events_per_sec']:,.0f} ev/s "
        f"vs recorded {recorded['events_per_sec']:,.0f} ev/s "
        f"(allowed {REGRESSION_FACTOR}x)"
    )


@pytest.mark.perf
def test_steady_1000_within_2x_of_recording(repro_report):
    recorded = _recorded_point(_recorded(), "steady", 1000)
    fresh = bench_engine.micro_point("steady", "wheel", 1000, events=50_000)
    repro_report(
        "perf smoke: steady@1000 wheel "
        f"{fresh['events_per_sec']:,.0f} ev/s vs recorded "
        f"{recorded['events_per_sec']:,.0f} ev/s"
    )
    assert fresh["events_per_sec"] * REGRESSION_FACTOR >= recorded["events_per_sec"], (
        f"steady throughput regressed: {fresh['events_per_sec']:,.0f} ev/s "
        f"vs recorded {recorded['events_per_sec']:,.0f} ev/s"
    )


@pytest.mark.perf
def test_steady_dispatch_is_allocation_free():
    """The pooled wheel must construct zero Event objects at steady state."""
    point = bench_engine.micro_point("steady", "wheel", 1000, events=20_000)
    assert point["allocs_per_event"] == 0.0


@pytest.mark.perf
def test_recorded_speedup_meets_acceptance():
    """The checked-in recording itself documents the >=5x win at 1000."""
    recorded = _recorded()
    speedup = recorded.get("speedup", {})
    assert speedup.get("drain_1000", 0.0) >= 5.0
