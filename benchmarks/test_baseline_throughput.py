"""Benchmark: section 5.3 baseline throughput + 5.4 overhead check.

Shape criteria: connection-per-request and persistent throughput within
~15% of the paper's 2954 / 9487 requests/sec (the simulated costs equal
the paper's, so the residual gap is event-loop overheads the paper's
totals folded in), and per-request container use costing < 10%.
"""

from __future__ import annotations

import pytest

from repro.experiments import baseline
from repro.experiments.baseline import PAPER_CONN_PER_REQUEST, PAPER_PERSISTENT


@pytest.fixture(scope="module")
def result():
    return baseline.run(fast=True)


def test_fig_baseline_report(result, repro_report):
    repro_report(result.render())


def test_conn_per_request_near_paper(result):
    assert result.conn_per_request == pytest.approx(
        PAPER_CONN_PER_REQUEST, rel=0.15
    )


def test_persistent_near_paper(result):
    assert result.persistent == pytest.approx(PAPER_PERSISTENT, rel=0.15)


def test_persistent_speedup_factor(result):
    """Persistent connections gave the paper a 3.2x speedup."""
    speedup = result.persistent / result.conn_per_request
    assert speedup == pytest.approx(9487.0 / 2954.0, rel=0.15)


def test_container_overhead_negligible(result):
    """Section 5.4: throughput 'effectively unchanged' with containers."""
    overhead = 1.0 - result.with_containers / result.conn_per_request
    assert overhead < 0.10


def test_bench_baseline_point(benchmark):
    """Wall-clock cost of one baseline measurement (simulator speed)."""

    def run_short():
        return baseline._throughput(
            persistent=False, use_containers=False,
            warmup_s=0.1, measure_s=0.3, clients=10,
        )

    rate = benchmark.pedantic(run_short, iterations=1, rounds=3)
    assert rate is None or rate > 0
