"""Tier-2 perf smoke: windowed telemetry must stay cheap.

Run with ``pytest -m perf benchmarks/``.  The recorded numbers live in
``BENCH_obs.json`` at the repo root (regenerate with ``python -m repro
bench-obs``).  Two kinds of pin:

* the **recorded artifact** itself must document the PR's perf floor:
  trace-off drain throughput within noise of the bare PR-6 engine
  (``BENCH_engine.json``), and the windowed pipeline at most 15% over
  plain observe on the end-to-end workload (the target is <=10%; the
  recording allows a noise margin);
* a **fresh smoke** re-measures one end-to-end cell per mode and fails
  only on gross regression (1.5x), wide enough to absorb machine noise,
  tight enough to catch the close path falling off its vectorized
  fast path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import bench_obs

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORDED = REPO_ROOT / "BENCH_obs.json"
ENGINE_RECORDED = REPO_ROOT / "BENCH_engine.json"

#: The recorded windows-vs-observe end-to-end overhead must stay under
#: this (target <=10% plus a recording-noise margin).
RECORDED_WINDOWS_OVERHEAD = 0.15

#: Trace-off drain must be within this factor of the bare engine's
#: recorded drain throughput (same workload, no observability): the
#: PR 6 zero-overhead trace-off property.
TRACE_OFF_FACTOR = 1.5

#: Fresh re-measure: gross-regression bound for windows vs observe.
REGRESSION_FACTOR = 1.5


def _recorded() -> dict:
    if not RECORDED.exists():
        pytest.skip("BENCH_obs.json not recorded; run `python -m repro bench-obs`")
    return json.loads(RECORDED.read_text())


@pytest.mark.perf
def test_recorded_windows_overhead_meets_floor(repro_report):
    overheads = _recorded()["overheads"]["end_to_end"]
    repro_report(
        "perf smoke: recorded windows-vs-observe e2e overhead "
        f"{overheads['windows_vs_observe']:+.1%} "
        f"(floor {RECORDED_WINDOWS_OVERHEAD:+.0%})"
    )
    assert overheads["windows_vs_observe"] <= RECORDED_WINDOWS_OVERHEAD, (
        f"recorded windowed-telemetry overhead "
        f"{overheads['windows_vs_observe']:+.1%} exceeds "
        f"{RECORDED_WINDOWS_OVERHEAD:+.0%}; re-run `python -m repro "
        f"bench-obs` on a quiet machine or fix the close path"
    )


@pytest.mark.perf
def test_recorded_drain_attachment_is_cheap():
    """Attaching the pipeline must not tax uninstrumented dispatch."""
    overheads = _recorded()["overheads"]["drain"]
    assert overheads["windows_vs_observe"] <= 0.10


@pytest.mark.perf
def test_trace_off_matches_bare_engine(repro_report):
    """The ``off`` cell IS the PR 6 fast path: one predicate per site."""
    if not ENGINE_RECORDED.exists():
        pytest.skip("BENCH_engine.json not recorded")
    engine = json.loads(ENGINE_RECORDED.read_text())
    bare = next(
        point["events_per_sec"]
        for point in engine["drain"]
        if point["queue"] == "wheel" and point["containers"] == 1000
    )
    off = next(
        point["events_per_sec"]
        for point in _recorded()["drain"]
        if point["mode"] == "off"
    )
    repro_report(
        f"perf smoke: trace-off drain {off:,.0f} ev/s vs bare engine "
        f"{bare:,.0f} ev/s"
    )
    assert off * TRACE_OFF_FACTOR >= bare, (
        f"trace-off drain {off:,.0f} ev/s fell more than "
        f"{TRACE_OFF_FACTOR}x below the bare engine's {bare:,.0f} ev/s"
    )


@pytest.mark.perf
def test_fresh_windows_overhead_within_gross_bound(repro_report):
    """One interleaved repeat per mode; catches the close path going
    quadratic without being flaky about single-digit percentages."""
    best = {}
    for _ in range(2):
        for mode in ("observe", "windows"):
            elapsed, _events = bench_obs._e2e_once(mode)
            if mode not in best or elapsed < best[mode]:
                best[mode] = elapsed
    ratio = best["windows"] / best["observe"]
    repro_report(
        f"perf smoke: fresh windows/observe e2e ratio {ratio:.2f} "
        f"(bound {REGRESSION_FACTOR}x)"
    )
    assert ratio <= REGRESSION_FACTOR, (
        f"windowed telemetry ran {ratio:.2f}x plain observe "
        f"(bound {REGRESSION_FACTOR}x)"
    )
