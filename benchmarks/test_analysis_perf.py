"""Tier-2 perf smoke for the shared-parse analysis stack.

The whole-program analyzer (``python -m repro analyze``) rides on the
same :class:`~repro.analysis.graph.ModuleGraph` as the determinism
lint: every file is read and parsed once, the load walk buckets nodes
by type, and each rule pass iterates its buckets instead of
re-traversing trees.  The refactor's promise is that the combined
``python -m repro check`` (lint + all three analyzer families) costs no
more than lint alone did before the refactor, when the linter parsed
every file itself and ran two full ``NodeVisitor`` traversals per tree.

The pre-refactor lint cost one parse of every file plus two full
``NodeVisitor`` traversals per tree, which comes to almost exactly
twice the cost of a ``ModuleGraph.load`` (parse dominates both): the
actuals recorded on this container right before the rework landed were
432.3ms for the old lint alone vs 216ms for a graph load
(:data:`LINT_ALONE_BEFORE_MS`, kept for the report line).  The gate
therefore measures the load *in the same run* and budgets the combined
pipeline against :data:`PRE_REFACTOR_LOAD_MULTIPLE` x that load, so a
slow or contended machine inflates both sides equally instead of
flaking against a frozen wall-clock constant (the acceptance run
measured combined ~247ms vs a ~432ms budget, a 1.75x margin).

Run with ``pytest -m perf benchmarks/``.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.analyze import analyze_graph
from repro.analysis.graph import ModuleGraph, package_root
from repro.analysis.lint import lint_graph

#: Wall time of the pre-refactor lint alone (independent per-file parse
#: + two NodeVisitor traversals per tree), best-of-5 on this container
#: right before the shared-graph refactor.  Informational: the gate
#: budgets against a same-run load measurement, not this constant.
LINT_ALONE_BEFORE_MS = 432.3

#: Same-run cost model for the pre-refactor lint: one parse per file
#: (what ModuleGraph.load does) plus NodeVisitor traversals of
#: comparable cost.  The recorded actuals above back the factor:
#: 432.3ms lint-alone / 216ms load = 2.0.
PRE_REFACTOR_LOAD_MULTIPLE = 2.0


def _best_ms(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _combined_shared() -> None:
    graph = ModuleGraph.load(package_root())
    lint_graph(graph)
    analyze_graph(graph)


@pytest.mark.perf
def test_combined_check_no_slower_than_pre_refactor_lint(repro_report):
    load_ms = _best_ms(lambda: ModuleGraph.load(package_root()))
    fresh = _best_ms(_combined_shared)
    budget_ms = load_ms * PRE_REFACTOR_LOAD_MULTIPLE
    repro_report(
        "perf smoke: combined lint+analyze "
        f"{fresh:.1f}ms vs pre-refactor lint-alone model "
        f"{budget_ms:.1f}ms ({budget_ms / fresh:.2f}x margin; recorded "
        f"actual was {LINT_ALONE_BEFORE_MS:.1f}ms)"
    )
    assert fresh <= budget_ms, (
        f"combined lint+analyze took {fresh:.1f}ms, slower than the "
        f"pre-refactor lint-alone cost model ({budget_ms:.1f}ms = "
        f"{PRE_REFACTOR_LOAD_MULTIPLE}x a {load_ms:.1f}ms graph load "
        "measured in this run); the shared-parse property regressed"
    )


@pytest.mark.perf
def test_shared_graph_beats_reparsing_per_tool():
    """Running lint and analyze off one graph must beat loading a graph
    per tool -- the saving is a full parse of the tree, so demand a
    clearly-visible 15% even on noisy machines (measured ~1.8x)."""

    def unshared() -> None:
        lint_graph(ModuleGraph.load(package_root()))
        analyze_graph(ModuleGraph.load(package_root()))

    shared_ms = _best_ms(_combined_shared)
    unshared_ms = _best_ms(unshared)
    assert unshared_ms >= shared_ms * 1.15, (
        f"sharing the parsed graph saved almost nothing "
        f"({shared_ms:.1f}ms shared vs {unshared_ms:.1f}ms unshared); "
        "a pass is probably re-parsing or re-walking the tree"
    )


@pytest.mark.perf
def test_analyzer_passes_cost_less_than_the_parse_they_share():
    """The three analyzer families together must stay cheaper than one
    graph load: they iterate prebuilt node buckets, so if a pass ever
    re-walks every tree this flips (analyze ~19ms vs load ~216ms when
    recorded)."""
    graph = ModuleGraph.load(package_root())
    load_ms = _best_ms(lambda: ModuleGraph.load(package_root()))
    analyze_ms = _best_ms(lambda: analyze_graph(graph))
    assert analyze_ms <= load_ms, (
        f"the analyzer passes ({analyze_ms:.1f}ms) now cost more than "
        f"loading the graph ({load_ms:.1f}ms); a pass is re-traversing "
        "trees instead of using ModuleInfo.index"
    )
