"""Tier-2 perf smoke for the SMP fast path.

The per-CPU run-queue rework must keep the 8-core / 1000-container pick
loop at least 2x faster than the pre-rework scheduler, which funnelled
every core through one global ready index and an exclude set of
running entities.  That baseline is frozen in
``bench_scalability.SMP_BEFORE_BASELINE`` (recorded on this container
right before the rework landed); the acceptance run recorded a ~10x
speedup, so a 2x floor leaves ample headroom for machine noise while
still catching a return to exclude-set scans.

Run with ``pytest -m perf benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import bench_scalability

#: Required speedup of the fresh measurement over the frozen pre-rework
#: baseline (acceptance criterion is >=5x on the recording; the live
#: smoke test asks for 2x to absorb slow CI machines).
REQUIRED_SPEEDUP = 2.0


@pytest.mark.perf
def test_smp_pick_8x1000_at_least_2x_over_pre_rework(repro_report):
    before = next(
        point["us_per_pick"]
        for point in bench_scalability.SMP_BEFORE_BASELINE["smp_microbench"]
        if point["containers"] == 1000 and point["n_cpus"] == 8
    )
    fresh = bench_scalability.smp_microbench_point(1000, 8, picks=2000)
    speedup = before / fresh["us_per_pick"]
    repro_report(
        "perf smoke: SMP pick 1000x8 "
        f"{fresh['us_per_pick']:.3f}us vs pre-rework {before:.3f}us "
        f"({speedup:.1f}x)"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"SMP pick path at 8 cores / 1000 containers lost its speedup: "
        f"{fresh['us_per_pick']:.1f}us/pick vs pre-rework "
        f"{before:.1f}us/pick ({speedup:.2f}x < {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.perf
def test_smp_pick_beats_single_core_pick_rate_per_core():
    """Sharding must not serialize: driving 4 cores round-robin costs
    less per pick than 4x the single-core cost (no global-lock-style
    rescan of all cores' work on every pick)."""
    single = bench_scalability.smp_microbench_point(1000, 1, picks=1200)
    quad = bench_scalability.smp_microbench_point(1000, 4, picks=1200)
    assert quad["us_per_pick"] <= single["us_per_pick"] * 4.0
