"""Tier-2 perf smoke: the sweep cache must make warm re-runs ~free.

Run with ``pytest -m perf benchmarks/``.  A real Figure 11 point is
computed cold into a scratch cache and then re-fetched warm; the warm
fetch must cost a small fraction of the cold compute.  The 10% bound is
the acceptance threshold recorded in ``BENCH_sweep.json``; in practice
a warm fetch is a single pickle load and lands around 0.01%.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig11_priority, sweep

pytestmark = pytest.mark.perf


def _one_point_grid():
    return fig11_priority.grid(fast=True, points=[0])[:1]


def test_warm_cache_fetch_under_10pct_of_cold(tmp_path, repro_report):
    grid = _one_point_grid()
    cold = sweep.SweepStats()
    cold_results = sweep.run_points(
        grid, cache=True, cache_dir=tmp_path, stats=cold
    )
    warm = sweep.SweepStats()
    warm_results = sweep.run_points(
        grid, cache=True, cache_dir=tmp_path, stats=warm
    )
    assert warm.cache_hits == len(grid)
    assert warm_results == cold_results
    assert warm.wall_s < 0.10 * cold.wall_s, (
        f"warm fetch {warm.wall_s:.4f}s vs cold {cold.wall_s:.4f}s"
    )
    repro_report(
        "sweep cache smoke: cold "
        f"{cold.wall_s:.3f}s -> warm {warm.wall_s:.5f}s "
        f"({warm.wall_s / cold.wall_s:.5%} of cold)"
    )
