"""Tier-2 perf smoke: the scheduler must stay fast at 1000 entities.

Run with ``pytest -m perf benchmarks/``.  The recorded numbers live in
``BENCH_scalability.json`` at the repo root (regenerate with ``python -m
repro bench``); the smoke test re-measures the 1000-container microbench
point and fails when it has regressed more than 2x against the recording,
which is wide enough to absorb machine noise but catches a complexity
regression (the pre-optimisation scheduler was ~180x slower, not 2x).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import bench_scalability

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORDED = REPO_ROOT / "BENCH_scalability.json"

#: Allowed slowdown vs the recorded run before the smoke test fails.
REGRESSION_FACTOR = 2.0


def _recorded() -> dict:
    if not RECORDED.exists():
        pytest.skip("BENCH_scalability.json not recorded; run `python -m repro bench`")
    return json.loads(RECORDED.read_text())


@pytest.mark.perf
def test_microbench_1000_within_2x_of_recording(repro_report):
    recorded = _recorded()
    baseline = {
        point["containers"]: point["us_per_pick"]
        for point in recorded["microbench"]
    }
    fresh = bench_scalability.microbench_point(1000, picks=2000)
    repro_report(
        "perf smoke: 1000-container pick "
        f"{fresh['us_per_pick']:.3f}us vs recorded {baseline[1000]:.3f}us"
    )
    assert fresh["us_per_pick"] <= baseline[1000] * REGRESSION_FACTOR, (
        f"pick at 1000 containers regressed: {fresh['us_per_pick']:.1f}us/pick "
        f"vs recorded {baseline[1000]:.1f}us/pick "
        f"(allowed {REGRESSION_FACTOR}x)"
    )


@pytest.mark.perf
def test_pick_cost_scales_sublinearly():
    """us/pick must not grow with container count like the old O(n) scan.

    Measured in-process back to back so machine speed cancels out; a
    100x entity increase must cost well under the ~80x/pick the linear
    scheduler paid (indexed picks are near-flat, ~1.5x from cache
    effects).
    """
    small = bench_scalability.microbench_point(10, picks=2000)
    large = bench_scalability.microbench_point(1000, picks=2000)
    growth = large["us_per_pick"] / small["us_per_pick"]
    assert growth < 8.0, (
        f"pick cost grew {growth:.1f}x from 10 to 1000 containers -- "
        "scheduler is scanning linearly again"
    )


@pytest.mark.perf
def test_recorded_speedup_meets_acceptance():
    """The checked-in recording itself documents the >=5x win at 1000."""
    recorded = _recorded()
    speedup = recorded.get("speedup", {})
    assert speedup.get("microbench_pick_1000", 0.0) >= 5.0
    assert speedup.get("end_to_end_1000", 0.0) >= 5.0
