"""Benchmark: section 5.8 -- virtual-server isolation.

Shape criteria: "the total CPU time consumed by each guest server
exactly matched its allocation" -- each observed share within a couple
of percentage points of its guarantee, and the nested sandbox (the
recursive re-division the paper highlights) pinned at its sub-limit.
"""

from __future__ import annotations

import pytest

from repro.experiments import virtual_servers


@pytest.fixture(scope="module")
def result():
    return virtual_servers.run(fast=True)


def test_virtual_servers_report(result, repro_report):
    repro_report(result.render())


def test_each_guest_matches_allocation(result):
    for guest in result.guests:
        assert guest.observed == pytest.approx(guest.allocated, abs=0.03), (
            guest.name
        )


def test_shares_are_ordered(result):
    observed = [g.observed for g in result.guests]
    assert observed == sorted(observed, reverse=True)


def test_nested_cgi_sandbox_enforced(result):
    assert result.nested_cgi_share == pytest.approx(
        result.nested_cgi_limit, abs=0.015
    )


def test_bench_virtual_servers(benchmark):
    """Wall-clock cost of a short three-guest run."""
    benchmark.pedantic(
        lambda: virtual_servers.run(fast=True),
        iterations=1,
        rounds=1,
    )
