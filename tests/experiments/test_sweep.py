"""The sweep engine: grids, parallel determinism, and the result cache."""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.experiments import fig11_priority, sweep

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel determinism tests assume cheap fork workers",
)


# ---------------------------------------------------------------------------
# Points, registration, cache keys
# ---------------------------------------------------------------------------


def test_point_params_are_canonical():
    a = sweep.point("fig11", seed=1, b=2, a=1)
    b = sweep.point("fig11", seed=1, a=1, b=2)
    assert a == b
    assert a.params == (("a", 1), ("b", 2))


def test_point_rejects_non_scalar_params():
    with pytest.raises(TypeError):
        sweep.point("fig11", seed=1, bad=object())


def test_points_are_picklable():
    pt = sweep.point("fig11", seed=11, config="select", n_low=5)
    assert pickle.loads(pickle.dumps(pt)) == pt


def test_unregistered_experiment_raises():
    with pytest.raises(KeyError, match="no point runner"):
        sweep.run_points([sweep.point("does-not-exist", seed=0)], cache=False)


def test_cache_key_depends_on_params_and_seed():
    base = sweep.point("fig11", seed=1, x=1)
    assert sweep.cache_key(base) == sweep.cache_key(sweep.point("fig11", seed=1, x=1))
    assert sweep.cache_key(base) != sweep.cache_key(sweep.point("fig11", seed=2, x=1))
    assert sweep.cache_key(base) != sweep.cache_key(sweep.point("fig11", seed=1, x=2))
    assert sweep.cache_key(base) != sweep.cache_key(sweep.point("fig14", seed=1, x=1))


def test_cache_key_includes_source_tree_digest(monkeypatch):
    before = sweep.cache_key(sweep.point("fig11", seed=1, x=1))
    monkeypatch.setattr(sweep, "_TREE_DIGEST", "different-code")
    after = sweep.cache_key(sweep.point("fig11", seed=1, x=1))
    assert before != after


def test_registered_experiments_cover_all_harnesses():
    # Importing repro.experiments registers every harness's runner.
    import repro.experiments  # noqa: F401

    names = sweep.registered_experiments()
    for expected in ("fig11", "fig12", "fig14", "baseline", "virtual"):
        assert expected in names
    assert any(name.startswith("ablation.") for name in names)


# ---------------------------------------------------------------------------
# Engine semantics on a cheap synthetic runner
# ---------------------------------------------------------------------------


def _toy_runner(value: int, seed: int = 0) -> int:
    return value * 10 + seed


sweep.point_runner("test.toy")(_toy_runner)


def _toy_grid(n: int = 6) -> list:
    return [sweep.point("test.toy", seed=i % 2, value=i) for i in range(n)]


def test_results_align_with_point_order_serial(tmp_path):
    results = sweep.run_points(_toy_grid(), jobs=1, cache=False)
    assert results == [i * 10 + i % 2 for i in range(6)]


@needs_fork
def test_results_align_with_point_order_parallel():
    results = sweep.run_points(_toy_grid(), jobs=3, cache=False)
    assert results == [i * 10 + i % 2 for i in range(6)]


def test_cache_round_trip_and_stats(tmp_path):
    grid = _toy_grid()
    cold = sweep.SweepStats()
    first = sweep.run_points(grid, cache=True, cache_dir=tmp_path, stats=cold)
    warm = sweep.SweepStats()
    second = sweep.run_points(grid, cache=True, cache_dir=tmp_path, stats=warm)
    assert first == second
    assert cold.cache_hits == 0 and cold.computed == len(grid)
    assert warm.cache_hits == len(grid) and warm.computed == 0
    assert warm.hit_indexes == list(range(len(grid)))


def test_no_cache_bypasses_store(tmp_path):
    sweep.run_points(_toy_grid(), cache=False, cache_dir=tmp_path)
    stats = sweep.SweepStats()
    sweep.run_points(
        _toy_grid(), cache=True, cache_dir=tmp_path, stats=stats
    )
    # The cache=False run must not have populated the directory.
    assert stats.cache_hits == 0


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    grid = _toy_grid(1)
    sweep.run_points(grid, cache=True, cache_dir=tmp_path)
    (entry,) = list(tmp_path.rglob("*.pkl"))
    entry.write_bytes(b"not a pickle")
    stats = sweep.SweepStats()
    results = sweep.run_points(grid, cache=True, cache_dir=tmp_path, stats=stats)
    assert results == [0]
    assert stats.cache_hits == 0 and stats.computed == 1


def test_cache_dir_env_var_is_honoured(tmp_path, monkeypatch):
    monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path / "alt"))
    sweep.run_points(_toy_grid(2), cache=True)
    assert list((tmp_path / "alt").rglob("*.pkl"))


# ---------------------------------------------------------------------------
# Determinism on the real fig11 harness (the acceptance criteria)
# ---------------------------------------------------------------------------

#: A cut of Figure 11's fast-mode grid small enough for the test suite:
#: all three configurations, two load points, fast-mode windows.
FIG11_TEST_POINTS = [0, 2]


@needs_fork
def test_fig11_parallel_output_is_bit_identical_to_serial():
    serial = fig11_priority.run(
        fast=True, points=FIG11_TEST_POINTS, jobs=1, cache=False
    )
    parallel = fig11_priority.run(
        fast=True, points=FIG11_TEST_POINTS, jobs=4, cache=False
    )
    # Bit-identical: every float equal, and the rendered table equal bytes.
    assert [s.points for s in parallel.series] == [s.points for s in serial.series]
    assert parallel.render().encode() == serial.render().encode()


@needs_fork
def test_fig11_warm_cache_rerun_is_identical_and_all_hits(tmp_path, monkeypatch):
    monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path / "cache"))
    cold = fig11_priority.run(
        fast=True, points=FIG11_TEST_POINTS, jobs=4, cache=True
    )
    grid = fig11_priority.grid(fast=True, points=FIG11_TEST_POINTS)
    stats = sweep.SweepStats()
    warm_values = sweep.run_points(grid, jobs=1, cache=True, stats=stats)
    assert stats.cache_hits == len(grid) and stats.computed == 0
    warm = fig11_priority.run(
        fast=True, points=FIG11_TEST_POINTS, jobs=1, cache=True
    )
    assert warm.render() == cold.render()
    assert [s.points for s in warm.series] == [s.points for s in cold.series]
    assert warm_values == [y for s in cold.series for (_x, y) in s.points]
