"""Figure/result export to JSON and CSV."""

import csv
import io
import json

import pytest

from repro.experiments.common import FigureResult, new_series
from repro.experiments.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    result_to_json,
)


@pytest.fixture
def figure():
    a = new_series("alpha")
    a.add(0, 10.0)
    a.add(1, 20.0)
    b = new_series("beta")
    b.add(0, 1.0)
    b.add(2, 3.0)
    return FigureResult(title="T", x_label="x", series=[a, b])


def test_dict_roundtrip(figure):
    data = figure_to_dict(figure)
    assert data["title"] == "T"
    assert data["series"][0]["label"] == "alpha"
    assert data["series"][0]["points"] == [[0, 10.0], [1, 20.0]]


def test_json_parses(figure):
    parsed = json.loads(figure_to_json(figure))
    assert parsed["x_label"] == "x"
    assert len(parsed["series"]) == 2


def test_csv_has_header_and_gaps(figure):
    rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
    assert rows[0] == ["x", "alpha", "beta"]
    # x=1 exists only for alpha; beta's cell is empty.
    row_for_1 = next(r for r in rows[1:] if r[0] == "1")
    assert row_for_1[1] == "20.0"
    assert row_for_1[2] == ""


def test_result_to_json_handles_dataclasses():
    from repro.experiments.baseline import BaselineResult

    result = BaselineResult(
        conn_per_request=2800.0, persistent=8900.0, with_containers=2700.0
    )
    parsed = json.loads(result_to_json(result))
    assert parsed["persistent"] == 8900.0


def test_result_to_json_handles_nested_dicts(figure):
    parsed = json.loads(result_to_json({"fig": figure, "n": 3}))
    assert parsed["n"] == 3
    assert parsed["fig"]["title"] == "T"


def test_result_to_json_falls_back_to_render():
    class Odd:
        def render(self):
            return "rendered text"

    parsed = json.loads(result_to_json(Odd()))
    assert parsed["rendered"] == "rendered text"
