"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_run_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "create resource container" in out
    assert "wall]" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])
