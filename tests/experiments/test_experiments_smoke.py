"""Smoke tests for the experiment harnesses (tiny configurations).

The benchmarks exercise the real configurations; these just guarantee
every harness runs end-to-end and produces well-formed output quickly.
"""

import pytest

from repro.experiments import (
    ablations,
    baseline,
    fig11_priority,
    fig12_cgi,
    fig14_synflood,
    table1_primitives,
    virtual_servers,
)


def test_table1_smoke():
    result = table1_primitives.run()
    rendered = result.render()
    assert "create resource container" in rendered
    assert len(result.simulated_us) == 7


def test_table1_wallclock_smoke():
    results = table1_primitives.wallclock_microbench()
    assert all(value > 0 for value in results.values())


def test_fig11_single_point():
    value = fig11_priority._run_point("eventapi", 3, 0.2, 0.3)
    assert value > 0


def test_fig11_run_structure():
    result = fig11_priority.run(fast=True, points=[0, 3])
    assert len(result.series) == 3
    assert all(len(s.points) == 2 for s in result.series)
    assert "Fig. 11" in result.render()


def test_fig12_single_point():
    from repro import SystemMode

    throughput, share = fig12_cgi._run_point(
        SystemMode.RC, 0.3, 1, warmup_s=0.5, measure_s=1.0
    )
    assert throughput > 0
    assert 0.0 <= share <= 1.0


def test_fig14_single_point():
    value = fig14_synflood._run_point(True, 5_000.0, 0.5, 0.5)
    assert value > 0


def test_baseline_smoke():
    value = baseline._throughput(
        persistent=True, use_containers=False,
        warmup_s=0.1, measure_s=0.3, clients=5,
    )
    assert value > 1_000


def test_virtual_servers_smoke():
    result = virtual_servers.run(fast=True)
    assert len(result.guests) == 3
    assert "guest-a" in result.render()


def test_ablation_pruning_smoke():
    result = ablations.run_pruning(fast=True, n_containers=10)
    assert result.max_without_pruning > result.max_with_pruning


def test_ablation_scheduler_policies_smoke():
    results = ablations.run_scheduler_policies(fast=True)
    assert {r.policy for r in results} == {"stride", "lottery"}


def test_figure_result_render_alignment():
    from repro.experiments.common import FigureResult, new_series

    series = new_series("a")
    series.add(1, 10.0)
    other = new_series("b")
    other.add(1, 20.0)
    other.add(2, 30.0)
    figure = FigureResult(title="T", x_label="x", series=[series, other])
    rendered = figure.render()
    assert "T" in rendered
    assert "-" in rendered.splitlines()[-1]  # missing point placeholder


def test_fig_disk_isolation_single_point():
    from repro.experiments import fig_disk_isolation

    value = fig_disk_isolation._run_point("wfq", 2, 0.1, 0.3)
    assert value > 0


def test_fig_disk_isolation_wfq_isolates_where_fifo_does_not():
    from repro.experiments import fig_disk_isolation

    base = fig_disk_isolation._run_point("fifo", 0, 0.1, 0.4)
    fifo = fig_disk_isolation._run_point("fifo", 4, 0.1, 0.4)
    wfq = fig_disk_isolation._run_point("wfq", 4, 0.1, 0.4)
    assert fifo > 1.5 * base  # FIFO lets antagonists inflate latency
    assert wfq < 1.5 * base  # weighted-fair keeps premium near-flat
