"""Packets and addresses."""

import pytest

from repro.net.packet import Packet, PacketKind, format_ip, ip_addr


def test_ip_addr_roundtrip():
    addr = ip_addr(192, 168, 1, 200)
    assert format_ip(addr) == "192.168.1.200"


def test_ip_addr_bounds():
    with pytest.raises(ValueError):
        ip_addr(256, 0, 0, 1)
    with pytest.raises(ValueError):
        ip_addr(0, 0, 0, -1)


def test_ip_addr_structure():
    assert ip_addr(1, 2, 3, 4) == (1 << 24) | (2 << 16) | (3 << 8) | 4


def test_packet_sequence_increases():
    a = Packet(kind=PacketKind.SYN, src_addr=1)
    b = Packet(kind=PacketKind.SYN, src_addr=1)
    assert b.seq > a.seq


def test_packet_defaults():
    packet = Packet(kind=PacketKind.DATA, src_addr=ip_addr(10, 0, 0, 1))
    assert packet.dst_port == 80
    assert packet.conn is None
