"""TCP stack semantics through a live kernel."""

import pytest

from repro import Host, SystemMode
from repro.apps.webclient import HttpClient, HttpRequest
from repro.net.packet import Packet, PacketKind, ip_addr
from repro.net.tcp import ConnState, ListenSocket
from repro.syscall import api


def make_listening_host(mode=SystemMode.RC, backlog=8):
    host = Host(mode=mode, seed=9)
    state = {}

    def server():
        fd = yield api.Socket()
        yield api.Bind(fd, 80)
        yield api.Listen(fd, backlog=backlog)
        state["lfd"] = fd
        yield api.Sleep(1e9)

    host.kernel.spawn_process("srv", server)
    host.run(until_us=1_000.0)
    return host, state


class RecordingClient:
    """Minimal ClientEndpoint capturing callbacks."""

    def __init__(self, host):
        self.host = host
        self.synacks = []
        self.established = []
        self.responses = []
        self.closes = []

    def on_synack(self, half_open):
        self.synacks.append(half_open)

    def on_established(self, conn):
        self.established.append(conn)

    def on_response(self, conn, payload, size_bytes):
        self.responses.append((payload, size_bytes))

    def on_server_close(self, conn):
        self.closes.append(conn)


def test_syn_reaches_syn_queue():
    host, _ = make_listening_host()
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=5_000.0)
    socket = host.kernel.stack.listeners[0]
    assert socket.stats_syns_received == 1
    assert client.synacks  # SYN|ACK delivered to the client


def test_full_handshake_fills_accept_queue():
    host, _ = make_listening_host()
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=2_000.0)
    half_open = client.synacks[0]
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 2, 3, 4),
            payload=half_open,
        )
    )
    host.run(until_us=4_000.0)
    socket = host.kernel.stack.listeners[0]
    assert len(socket.accept_queue) == 1
    assert client.established


def test_syn_queue_overflow_evicts_oldest():
    host, _ = make_listening_host(backlog=4)
    clients = [RecordingClient(host) for _ in range(6)]
    for index, client in enumerate(clients):
        host.kernel.net_input(
            Packet(
                kind=PacketKind.SYN,
                src_addr=ip_addr(1, 2, 3, index + 1),
                payload=client,
            )
        )
    host.run(until_us=10_000.0)
    socket = host.kernel.stack.listeners[0]
    assert len(socket.syn_queue) == 4
    assert socket.stats_syns_dropped == 2
    # The evicted entries are the oldest two.
    evicted_addrs = {ip_addr(1, 2, 3, 1), ip_addr(1, 2, 3, 2)}
    remaining = {h.src_addr for h in socket.syn_queue}
    assert evicted_addrs.isdisjoint(remaining)


def test_handshake_ack_for_evicted_halfopen_ignored():
    host, _ = make_listening_host(backlog=1)
    first = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 1, 1, 1), payload=first)
    )
    host.run(until_us=2_000.0)
    half_open = first.synacks[0]
    # Second SYN evicts the first half-open.
    second = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(2, 2, 2, 2), payload=second)
    )
    host.run(until_us=4_000.0)
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 1, 1, 1),
            payload=half_open,
        )
    )
    host.run(until_us=6_000.0)
    socket = host.kernel.stack.listeners[0]
    assert len(socket.accept_queue) == 0
    assert not first.established


def test_stray_syn_without_listener_dropped():
    host = Host(mode=SystemMode.UNMODIFIED, seed=9)
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=2_000.0)
    assert host.kernel.stack.stats_stray == 1
    assert not client.synacks


def test_early_demux_drops_stray_before_protocol_cost():
    """In RC mode unmatched traffic dies at demux (LRP early discard)."""
    host = Host(mode=SystemMode.RC, seed=9)
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=2_000.0)
    assert host.kernel.stats_early_drops == 1
    # Only interrupt + demux CPU was burnt (plus nothing else runs).
    costs = host.kernel.costs
    assert host.kernel.cpu.accounting.total_cpu_us == pytest.approx(
        costs.interrupt_per_packet + costs.early_demux
    )


def test_demux_prefers_most_specific_listener():
    host = Host(mode=SystemMode.RC, seed=9)
    from repro.net.filters import AddrFilter

    def server():
        fd_all = yield api.Socket()
        yield api.Bind(fd_all, 80)
        yield api.Listen(fd_all)
        fd_net = yield api.Socket()
        yield api.Bind(
            fd_net, 80, AddrFilter(template=ip_addr(66, 6, 6, 0), prefix_len=24)
        )
        yield api.Listen(fd_net)
        yield api.Sleep(1e9)

    host.kernel.spawn_process("srv", server)
    host.run(until_us=1_000.0)
    stack = host.kernel.stack
    inside = stack.demux_listener(80, ip_addr(66, 6, 6, 42))
    outside = stack.demux_listener(80, ip_addr(10, 0, 0, 1))
    assert inside.addr_filter is not None
    assert outside.addr_filter is None


def test_connection_inherits_listen_socket_container():
    host = Host(mode=SystemMode.RC, seed=9)
    holder = {}

    def server():
        fd = yield api.Socket()
        yield api.Bind(fd, 80)
        yield api.Listen(fd)
        cfd = yield api.ContainerCreate("class")
        yield api.ContainerBindSocket(fd, cfd)
        holder["lfd"] = fd
        yield api.Sleep(1e9)

    host.kernel.spawn_process("srv", server)
    host.run(until_us=1_000.0)
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=3_000.0)
    half_open = client.synacks[0]
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 2, 3, 4),
            payload=half_open,
        )
    )
    host.run(until_us=6_000.0)
    socket = host.kernel.stack.listeners[0]
    conn = socket.accept_queue[0]
    assert conn.container is socket.container
    assert conn.container.name == "class"


def test_fin_after_server_close_releases_connection(rc_host):
    """Both directions closed => connection fully released."""
    host = rc_host
    done = {}

    def server():
        lfd = yield api.Socket()
        yield api.Bind(lfd, 80)
        yield api.Listen(lfd)
        fd = yield api.Accept(lfd)
        message = yield api.Read(fd)
        yield api.Write(fd, payload=message, size_bytes=1024)
        yield api.Close(fd)
        done["closed"] = True
        yield api.Sleep(1e9)

    host.kernel.spawn_process("srv", server)
    client = HttpClient(host.kernel, ip_addr(5, 5, 5, 5), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=50_000.0)
    assert done.get("closed")
    assert client.stats_completed == 1
