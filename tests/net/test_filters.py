"""The filtered sockaddr namespace: CIDR matching and demultiplexing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.filters import WILDCARD, AddrFilter, best_match
from repro.net.packet import ip_addr


class Holder:
    """Filter carrier for best_match tests."""

    def __init__(self, name, addr_filter):
        self.name = name
        self.addr_filter = addr_filter


def test_wildcard_matches_everything():
    assert WILDCARD.matches(0)
    assert WILDCARD.matches(0xFFFFFFFF)
    assert WILDCARD.matches(ip_addr(10, 1, 2, 3))


def test_exact_host_filter():
    f = AddrFilter(template=ip_addr(10, 0, 0, 5), prefix_len=32)
    assert f.matches(ip_addr(10, 0, 0, 5))
    assert not f.matches(ip_addr(10, 0, 0, 6))


def test_subnet_filter():
    f = AddrFilter(template=ip_addr(66, 6, 6, 0), prefix_len=24)
    assert f.matches(ip_addr(66, 6, 6, 99))
    assert not f.matches(ip_addr(66, 6, 7, 99))


def test_negated_filter():
    f = AddrFilter(template=ip_addr(66, 6, 6, 0), prefix_len=24, negate=True)
    assert not f.matches(ip_addr(66, 6, 6, 99))
    assert f.matches(ip_addr(10, 0, 0, 1))


def test_mask_values():
    assert AddrFilter(0, 0).mask == 0
    assert AddrFilter(0, 8).mask == 0xFF000000
    assert AddrFilter(0, 32).mask == 0xFFFFFFFF


def test_invalid_prefix_rejected():
    with pytest.raises(ValueError):
        AddrFilter(template=0, prefix_len=33)
    with pytest.raises(ValueError):
        AddrFilter(template=0, prefix_len=-1)


def test_best_match_prefers_longest_prefix():
    wildcard = Holder("wild", None)
    subnet = Holder("subnet", AddrFilter(ip_addr(10, 0, 0, 0), 24))
    host = Holder("host", AddrFilter(ip_addr(10, 0, 0, 7), 32))
    candidates = [wildcard, subnet, host]
    assert best_match(candidates, ip_addr(10, 0, 0, 7)).name == "host"
    assert best_match(candidates, ip_addr(10, 0, 0, 8)).name == "subnet"
    assert best_match(candidates, ip_addr(99, 0, 0, 1)).name == "wild"


def test_best_match_none_when_nothing_matches():
    only = Holder("host", AddrFilter(ip_addr(10, 0, 0, 7), 32))
    assert best_match([only], ip_addr(10, 0, 0, 8)) is None


def test_best_match_tie_goes_to_bind_order():
    a = Holder("first", None)
    b = Holder("second", None)
    assert best_match([a, b], 123).name == "first"


def test_negated_filter_less_specific_than_positive():
    positive = Holder("pos", AddrFilter(ip_addr(10, 0, 0, 0), 24))
    negative = Holder("neg", AddrFilter(ip_addr(99, 0, 0, 0), 24, negate=True))
    # Address inside the positive subnet: positive wins despite equal
    # prefix lengths.
    assert best_match([negative, positive], ip_addr(10, 0, 0, 1)).name == "pos"


def test_str_rendering():
    assert str(AddrFilter(ip_addr(10, 0, 0, 0), 24)) == "10.0.0.0/24"
    assert str(AddrFilter(ip_addr(10, 0, 0, 0), 24, negate=True)) == "!10.0.0.0/24"


# ---------------------------------------------------------------------------
# Property tests against a reference implementation
# ---------------------------------------------------------------------------


def reference_matches(template: int, prefix_len: int, addr: int) -> bool:
    """Reference via bit strings."""
    if prefix_len == 0:
        return True
    tbits = format(template, "032b")[:prefix_len]
    abits = format(addr, "032b")[:prefix_len]
    return tbits == abits


@given(
    template=st.integers(0, 0xFFFFFFFF),
    prefix_len=st.integers(0, 32),
    addr=st.integers(0, 0xFFFFFFFF),
)
@settings(max_examples=300, deadline=None)
def test_matches_agrees_with_reference(template, prefix_len, addr):
    filt = AddrFilter(template=template, prefix_len=prefix_len)
    assert filt.matches(addr) == reference_matches(template, prefix_len, addr)


@given(
    template=st.integers(0, 0xFFFFFFFF),
    prefix_len=st.integers(0, 32),
)
@settings(max_examples=200, deadline=None)
def test_template_always_matches_itself(template, prefix_len):
    assert AddrFilter(template=template, prefix_len=prefix_len).matches(template)


@given(
    template=st.integers(0, 0xFFFFFFFF),
    prefix_len=st.integers(0, 32),
    addr=st.integers(0, 0xFFFFFFFF),
)
@settings(max_examples=200, deadline=None)
def test_negation_is_complement(template, prefix_len, addr):
    positive = AddrFilter(template=template, prefix_len=prefix_len)
    negative = AddrFilter(template=template, prefix_len=prefix_len, negate=True)
    assert positive.matches(addr) != negative.matches(addr)
