"""Kernel network thread: queueing, priority order, overflow drops."""

import pytest

from repro import Host, SystemMode
from repro.core.attributes import timeshare_attrs
from repro.net.packet import Packet, PacketKind, ip_addr
from repro.net.procmodel import KernelNetThread, protocol_cost


@pytest.fixture
def setup():
    host = Host(mode=SystemMode.RC, seed=13)
    process = host.kernel.spawn_process("p")
    net_thread = host.kernel.net_threads[process.pid]
    return host, process, net_thread


def packet(i=0):
    return Packet(kind=PacketKind.DATA, src_addr=ip_addr(9, 9, 9, i + 1))


def test_enqueue_and_runnable(setup):
    host, process, net_thread = setup
    container = host.kernel.containers.create("c")
    assert not net_thread.runnable
    assert net_thread.enqueue(container, packet(), 10.0)
    assert net_thread.runnable
    assert net_thread.pending_packets() == 1


def test_head_selected_by_container_priority(setup):
    host, _process, net_thread = setup
    low = host.kernel.containers.create("low", attrs=timeshare_attrs(priority=1))
    high = host.kernel.containers.create("high", attrs=timeshare_attrs(priority=9))
    p_low = packet(0)
    p_high = packet(1)
    net_thread.enqueue(low, p_low, 10.0)
    net_thread.enqueue(high, p_high, 10.0)
    assert net_thread.charge_container() is high
    assert net_thread.advance(10.0)
    container, completed = net_thread.take_completed()
    assert container is high
    assert completed is p_high


def test_fifo_within_same_priority(setup):
    host, _process, net_thread = setup
    a = host.kernel.containers.create("a")
    b = host.kernel.containers.create("b")
    first = packet(0)
    second = packet(1)
    net_thread.enqueue(a, first, 5.0)
    net_thread.enqueue(b, second, 5.0)
    net_thread.advance(net_thread.work_remaining_us())
    _container, completed = net_thread.take_completed()
    assert completed is first


def test_queue_overflow_drops(setup):
    host, _process, net_thread = setup
    net_thread.queue_limit = 3
    container = host.kernel.containers.create("c")
    results = [net_thread.enqueue(container, packet(i), 1.0) for i in range(5)]
    assert results == [True, True, True, False, False]
    assert net_thread.stats_dropped == 2
    assert container.usage.packets_dropped == 2


def test_partial_advance_keeps_head(setup):
    host, _process, net_thread = setup
    container = host.kernel.containers.create("c")
    net_thread.enqueue(container, packet(), 10.0)
    assert not net_thread.advance(4.0)
    assert net_thread.work_remaining_us() == pytest.approx(6.0)
    assert net_thread.advance(6.0)


def test_head_sticks_despite_higher_priority_arrival(setup):
    """Once protocol processing of a packet starts it completes, even if
    higher-priority traffic arrives mid-packet."""
    host, _process, net_thread = setup
    low = host.kernel.containers.create("low", attrs=timeshare_attrs(priority=1))
    high = host.kernel.containers.create("high", attrs=timeshare_attrs(priority=9))
    low_packet = packet(0)
    net_thread.enqueue(low, low_packet, 10.0)
    net_thread.advance(5.0)  # started
    net_thread.enqueue(high, packet(1), 10.0)
    net_thread.advance(5.0)
    _container, completed = net_thread.take_completed()
    assert completed is low_packet


def test_dead_container_queue_discarded(setup):
    host, _process, net_thread = setup
    manager = host.kernel.containers
    doomed = manager.create("doomed")
    net_thread.enqueue(doomed, packet(), 10.0)
    manager.release(doomed)
    assert net_thread.charge_container() is None
    assert not net_thread.runnable


def test_scheduler_containers_lists_pending(setup):
    host, _process, net_thread = setup
    a = host.kernel.containers.create("a")
    b = host.kernel.containers.create("b")
    net_thread.enqueue(a, packet(0), 1.0)
    net_thread.enqueue(b, packet(1), 1.0)
    names = {c.name for c in net_thread.scheduler_containers()}
    assert names >= {"a"} or names >= {"b"}  # head may have been taken
    assert net_thread.pending_packets() == 2


def test_protocol_cost_per_kind():
    host = Host(mode=SystemMode.RC, seed=13)
    costs = host.kernel.costs
    kernel = host.kernel
    assert protocol_cost(kernel, Packet(kind=PacketKind.SYN, src_addr=1)) == costs.proto_syn
    assert protocol_cost(kernel, Packet(kind=PacketKind.DATA, src_addr=1)) == costs.proto_rx_segment
    assert protocol_cost(kernel, Packet(kind=PacketKind.FIN, src_addr=1)) == costs.proto_fin
    assert (
        protocol_cost(kernel, Packet(kind=PacketKind.HANDSHAKE_ACK, src_addr=1))
        == costs.proto_established
    )
