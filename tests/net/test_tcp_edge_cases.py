"""TCP edge cases: memory limits, segmentation, teardown orders."""

import pytest

from repro import Host, SystemMode, ip_addr
from repro.core.attributes import ContainerAttributes
from repro.net.packet import Packet, PacketKind
from repro.syscall import api

from tests.net.test_tcp import RecordingClient, make_listening_host


def test_memory_limit_drops_rx_data():
    """A container over its memory limit sheds incoming data (the
    socket-buffer control of section 4.4)."""
    host, _state = make_listening_host()
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 2, 3, 4), payload=client)
    )
    host.run(until_us=3_000.0)
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 2, 3, 4),
            payload=client.synacks[0],
        )
    )
    host.run(until_us=6_000.0)
    socket = host.kernel.stack.listeners[0]
    conn = socket.accept_queue[0]
    # Clamp the charge target's memory.
    target = conn.charge_target()
    target.attrs = ContainerAttributes(memory_limit_bytes=600)
    for index in range(3):
        host.kernel.net_input(
            Packet(
                kind=PacketKind.DATA,
                src_addr=ip_addr(1, 2, 3, 4),
                conn=conn,
                payload=f"seg{index}",
                size_bytes=256,
            )
        )
    host.run(until_us=12_000.0)
    # Two 256-byte segments fit under 600; the third was shed.
    assert len(conn.rx_segments) == 2
    assert target.usage.packets_dropped == 1
    assert target.usage.memory_bytes == 512


def test_write_cost_scales_with_segments():
    """Large responses pay per-segment transmit costs (via the syscall
    layer's entry-cost computation)."""
    host = Host(mode=SystemMode.RC, seed=97)
    executor = host.kernel.executor
    costs = host.kernel.costs

    class _FakeThread:
        process = None

    small = executor.entry_cost(
        api.Write(fd=0, payload=None, size_bytes=1024), _FakeThread()
    )
    large = executor.entry_cost(
        api.Write(fd=0, payload=None, size_bytes=60 * 1024), _FakeThread()
    )
    assert small == pytest.approx(
        costs.syscall_write_base + costs.proto_tx_segment
    )
    assert large == pytest.approx(
        costs.syscall_write_base + 43 * costs.proto_tx_segment
    )


def test_client_fin_before_server_close_is_eof():
    """Client half-closes first: the server read returns None (EOF)."""
    host = Host(mode=SystemMode.RC, seed=97)
    outcome = {}

    def server():
        lfd = yield api.Socket()
        yield api.Bind(lfd, 80)
        yield api.Listen(lfd)
        fd = yield api.Accept(lfd)
        first = yield api.Read(fd)
        outcome["first"] = first
        second = yield api.Read(fd)  # after FIN: EOF
        outcome["second"] = second
        yield api.Close(fd)

    host.kernel.spawn_process("srv", server)
    host.run(until_us=1_000.0)
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 1, 1, 1), payload=client)
    )
    host.run(until_us=3_000.0)
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 1, 1, 1),
            payload=client.synacks[0],
        )
    )
    host.run(until_us=6_000.0)
    conn = client.established[0]
    host.kernel.net_input(
        Packet(kind=PacketKind.DATA, src_addr=ip_addr(1, 1, 1, 1), conn=conn,
               payload="hello", size_bytes=64)
    )
    host.run(until_us=9_000.0)
    host.kernel.net_input(
        Packet(kind=PacketKind.FIN, src_addr=ip_addr(1, 1, 1, 1), conn=conn)
    )
    host.run(until_us=20_000.0)
    assert outcome["first"] == "hello"
    assert outcome["second"] is None


def test_data_after_close_is_stray():
    host, _state = make_listening_host()
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 1, 1, 1), payload=client)
    )
    host.run(until_us=3_000.0)
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 1, 1, 1),
            payload=client.synacks[0],
        )
    )
    host.run(until_us=6_000.0)
    conn = client.established[0]
    host.kernel.stack.server_close(conn)
    host.kernel.net_input(
        Packet(kind=PacketKind.FIN, src_addr=ip_addr(1, 1, 1, 1), conn=conn)
    )
    host.run(until_us=9_000.0)
    # Connection fully released; further data is ignored as stray.
    before = host.kernel.stack.stats_stray + host.kernel.stats_early_drops
    host.kernel.net_input(
        Packet(kind=PacketKind.DATA, src_addr=ip_addr(1, 1, 1, 1), conn=conn,
               payload="late", size_bytes=64)
    )
    host.run(until_us=12_000.0)
    after = host.kernel.stack.stats_stray + host.kernel.stats_early_drops
    assert after == before + 1


def test_double_server_close_is_idempotent():
    host, _state = make_listening_host()
    client = RecordingClient(host)
    host.kernel.net_input(
        Packet(kind=PacketKind.SYN, src_addr=ip_addr(1, 1, 1, 1), payload=client)
    )
    host.run(until_us=3_000.0)
    host.kernel.net_input(
        Packet(
            kind=PacketKind.HANDSHAKE_ACK,
            src_addr=ip_addr(1, 1, 1, 1),
            payload=client.synacks[0],
        )
    )
    host.run(until_us=6_000.0)
    conn = client.established[0]
    host.kernel.stack.server_close(conn)
    host.kernel.stack.server_close(conn)  # no error, no double notify
    host.run(until_us=8_000.0)
    assert len(client.closes) == 1
