"""Per-container egress QoS shaping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Host, SystemMode, ip_addr
from repro.core.attributes import ContainerAttributes, fixed_share_attrs
from repro.core.container import ResourceContainer
from repro.net.qos import NetworkQos, TransmitShaper, effective_qos


def shaped_container(rate, burst=8 * 1024, parent=None):
    attrs = ContainerAttributes(
        network_qos=NetworkQos(tx_rate_bytes_per_sec=rate, burst_bytes=burst)
    )
    return ResourceContainer("shaped", attrs=attrs, parent=parent)


def test_qos_validation():
    with pytest.raises(ValueError):
        NetworkQos(tx_rate_bytes_per_sec=0.0)
    with pytest.raises(ValueError):
        NetworkQos(burst_bytes=-1)


def test_unshaped_container_passes_through():
    shaper = TransmitShaper()
    container = ResourceContainer("plain")
    assert shaper.release_delay(container, 100_000, now=0.0) == 0.0
    assert shaper.release_delay(None, 100_000, now=0.0) == 0.0


def test_burst_absorbs_initial_segments():
    shaper = TransmitShaper()
    container = shaped_container(rate=1e6, burst=4096)  # 1 MB/s
    # Two 1 KB segments fit the 4 KB burst: no delay.
    assert shaper.release_delay(container, 1024, now=0.0) == 0.0
    assert shaper.release_delay(container, 1024, now=0.0) == 0.0


def test_sustained_rate_enforced():
    shaper = TransmitShaper()
    rate = 1e6  # bytes/sec
    container = shaped_container(rate=rate, burst=1024)
    total = 0
    last_delay = 0.0
    for _ in range(100):
        last_delay = shaper.release_delay(container, 1024, now=0.0)
        total += 1024
    # 100 KB at 1 MB/s = ~100 ms; burst shaves one segment's worth.
    assert last_delay == pytest.approx((total - 1024) * 1e6 / rate, rel=0.01)


def test_idle_link_regains_credit_bounded():
    shaper = TransmitShaper()
    container = shaped_container(rate=1e6, burst=2048)
    shaper.release_delay(container, 2048, now=0.0)
    shaper.release_delay(container, 2048, now=0.0)
    # Long idle: credit is capped at one burst, not unbounded.
    delay = shaper.release_delay(container, 64 * 1024, now=1e9)
    assert delay == pytest.approx((64 * 1024 - 2048) * 1e6 / 1e6, rel=0.01)


def test_effective_qos_takes_tightest_ancestor():
    parent = ResourceContainer(
        "p",
        attrs=ContainerAttributes(
            sched_class=fixed_share_attrs(0.5).sched_class,
            fixed_share=0.5,
            network_qos=NetworkQos(tx_rate_bytes_per_sec=1e5),
        ),
    )
    child = shaped_container(rate=1e7, parent=parent)
    qos = effective_qos(child)
    assert qos.tx_rate_bytes_per_sec == 1e5


def test_forget_resets_state():
    shaper = TransmitShaper()
    container = shaped_container(rate=1e3, burst=0)
    shaper.release_delay(container, 10_000, now=0.0)
    shaper.forget(container)
    # Fresh state: burst 0 => delay equals one service time exactly.
    delay = shaper.release_delay(container, 1_000, now=0.0)
    assert delay == pytest.approx(1_000 * 1e6 / 1e3)


@given(
    sizes=st.lists(st.integers(64, 8192), min_size=1, max_size=50),
    rate=st.floats(1e4, 1e8),
)
@settings(max_examples=60, deadline=None)
def test_shaper_never_exceeds_rate(sizes, rate):
    """Property: cumulative release times respect the configured rate
    (modulo one burst)."""
    shaper = TransmitShaper()
    burst = 4096
    container = shaped_container(rate=rate, burst=burst)
    now = 0.0
    sent = 0
    for size in sizes:
        delay = shaper.release_delay(container, size, now)
        sent += size
        release_time = now + delay
        # bytes released by release_time <= burst + rate * time
        assert sent <= burst + rate * (release_time / 1e6) + size * 1e-6 + 1e-6 * rate


def test_end_to_end_bandwidth_tiering():
    """Two client classes, one shaped to a low rate: its download times
    stretch while the unshaped class is unaffected."""
    from repro.apps.httpserver import EventDrivenServer, ListenSpec
    from repro.apps.webclient import HttpClient
    from repro.net.filters import AddrFilter
    from repro.syscall import api

    slow_addr = ip_addr(10, 7, 7, 7)
    host = Host(mode=SystemMode.RC, seed=91)
    host.kernel.fs.add_file("/big.bin", 100 * 1024)
    host.kernel.fs.warm("/big.bin")
    specs = [
        ListenSpec(
            "cheap",
            addr_filter=AddrFilter(template=slow_addr, prefix_len=32),
        ),
        ListenSpec("full"),
    ]
    server = EventDrivenServer(
        host.kernel, specs=specs, use_containers=True, event_api="select"
    )
    server.install()
    host.run(until_us=1_000.0)
    # Shape the cheap class to 1 MB/s from outside the app (an admin
    # action on the class container).
    cheap = next(
        c
        for c in host.kernel.containers.all_containers()
        if c.name == "httpd:class:cheap"
    )
    cheap.attrs = cheap.attrs.updated(
        network_qos=NetworkQos(tx_rate_bytes_per_sec=1e6, burst_bytes=1024)
    )
    slow = HttpClient(host.kernel, slow_addr, "slow", path="/big.bin")
    fast = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "fast", path="/big.bin")
    slow.start(at_us=2_000.0)
    fast.start(at_us=2_000.0)
    host.run(seconds=1.0)
    # 100 KB at 1 MB/s ~= 100 ms per download for the shaped class.
    assert slow.mean_latency_ms() > 50.0
    assert fast.mean_latency_ms() < 10.0
    assert fast.stats_completed > 5 * slow.stats_completed
