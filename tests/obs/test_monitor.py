"""Monitor dashboard rendering, JSONL export, and overload onset.

The dashboard renderers are pure functions of pipeline/watchdog state,
so most tests drive a small real pipeline and check the rendered bytes
are deterministic.  The onset test runs a shrunk version of the
``fig_overload_onset`` point and pins the headline claim: burn-rate
alerts fire before (never after) the throughput-collapse window.
"""

from __future__ import annotations

import pytest

from repro.obs.monitor import (
    dashboard_lines,
    monitor_jsonl_lines,
    render_dashboard,
    sparkline,
    write_monitor_exports,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import OverloadWatchdog, ThresholdRule
from repro.obs.timeseries import TimeSeriesPipeline
from repro.sim.tracing import TraceBus

WINDOW = 100.0


class _Obs:
    """Duck-typed stand-in for Observability (monitor only reads
    ``pipeline`` and ``watchdog``)."""

    def __init__(self, pipeline, watchdog):
        self.pipeline = pipeline
        self.watchdog = watchdog


def _monitored_obs() -> _Obs:
    bus = TraceBus()
    registry = MetricsRegistry()
    rule = ThresholdRule("depth", "net", "depth", source="gauge",
                         threshold=10.0)
    pipeline = TimeSeriesPipeline(registry, bus, window_us=WINDOW,
                                  rules=[rule])
    watchdog = OverloadWatchdog(pipeline)
    requests = registry.counter("httpd", "app", "requests")
    depth = registry.gauge("httpd", "net", "depth")
    for index in range(6):
        requests.inc(10 + index)
        depth.set(4.0 * index)  # crosses 10 from window 3 on
        bus.publish(20.0 + index * WINDOW, "client.complete",
                    req=index, client="httpd",
                    latency_us=1000.0 * (index + 1))
        pipeline._advance((index + 1) * WINDOW + 1.0)
    return _Obs(pipeline, watchdog)


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"


def test_dashboard_sections_present():
    text = render_dashboard(_monitored_obs())
    assert "== monitor dashboard ==" in text
    assert "-- trends (per window) --" in text
    assert "req/s" in text
    assert "-- container health --" in text
    assert "<host>" in text and "warn" in text
    assert "-- alert log --" in text
    assert "WARN depth" in text


def test_dashboard_without_pipeline_degrades():
    assert dashboard_lines(_Obs(None, None)) == [
        "monitor: no window pipeline attached"
    ]
    assert monitor_jsonl_lines(_Obs(None, None)) == []


def test_alert_log_elides_the_middle():
    obs = _monitored_obs()
    pipeline = obs.pipeline
    gauge = pipeline.registry.gauge("httpd", "net", "depth")
    for index in range(6, 40):
        gauge.set(99.0)
        pipeline._advance((index + 1) * WINDOW + 1.0)
    text = render_dashboard(obs)
    assert "elided" in text


def test_monitor_jsonl_structure_and_determinism():
    lines_a = monitor_jsonl_lines(_monitored_obs())
    lines_b = monitor_jsonl_lines(_monitored_obs())
    assert lines_a == lines_b
    import json

    records = [json.loads(line) for line in lines_a]
    kinds = [record["type"] for record in records]
    assert kinds[0] == "meta"
    assert kinds[-1] == "health"
    assert "window" in kinds and "alert" in kinds and "transition" in kinds
    meta = records[0]
    assert meta["windows_closed"] == 6
    assert meta["alerts"] == len([k for k in kinds if k == "alert"])
    assert records[-1]["worst"] == "warn"


def test_write_monitor_exports_round_trips(tmp_path):
    obs = _monitored_obs()
    paths = write_monitor_exports(obs, tmp_path)
    assert [path.name for path in paths] == ["dashboard.txt", "monitor.jsonl"]
    assert (tmp_path / "dashboard.txt").read_text() == (
        render_dashboard(obs) + "\n"
    )
    # A second identical pipeline produces byte-identical files.
    again = tmp_path / "again"
    write_monitor_exports(_monitored_obs(), again)
    assert (again / "monitor.jsonl").read_bytes() == (
        tmp_path / "monitor.jsonl"
    ).read_bytes()


def test_overload_onset_alerts_lead_collapse():
    """Shrunk fig_overload_onset point: the burn-rate alert fires, the
    host saturates, and detection never lags the collapse window."""
    from repro.experiments.fig_overload_onset import _run_point

    result = _run_point(
        defended=False,
        peak_rate=20_000.0,
        ramp_steps=4,
        baseline_s=0.4,
        step_s=0.3,
        tail_s=0.1,
        seed=23,
    )
    assert result["baseline_rate"] > 0.0
    first_burn = result["first_burn_alert_s"]
    assert first_burn is not None
    assert result["worst_health"] == "saturated"
    assert first_burn > 0.4  # never during the clean baseline
    collapse = result["collapse_s"]
    if collapse is not None:
        assert first_burn < collapse
    burn_rules = {
        alert["rule"] for alert in result["alerts"]
        if alert["kind"] == "burn_rate"
    }
    assert burn_rules & {"syn-drop-burn", "latency-slo-burn"}
    assert all(
        window["t_s"] == pytest.approx((index + 1) * 0.1)
        for index, window in enumerate(result["windows"][:8])
    )
