"""Simulated-time profiler attribution."""

from repro.obs.profile import SimProfiler, UNACCOUNTED
from repro.sim.tracing import TraceBus


def _slice(bus, time, amount, charge, kind="entity", network=False,
           phase=None, entity="t1"):
    bus.publish(time, "cpu.slice", amount_us=amount, charge=charge,
                kind=kind, network=network, phase=phase, entity=entity)


def test_entity_slices_split_app_and_net_subsystems():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    _slice(bus, 10.0, 4.0, "c1", network=False, phase="Compute")
    _slice(bus, 20.0, 6.0, "c1", network=True, phase="proto.data")
    assert profiler.totals == {
        ("c1", "app", "Compute"): 4.0,
        ("c1", "net", "proto.data"): 6.0,
    }
    assert profiler.total_us == 10.0


def test_interrupt_slices_get_intr_subsystem_and_unaccounted():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    _slice(bus, 5.0, 2.0, None, kind="hard", phase="rx-intr")
    _slice(bus, 9.0, 3.0, None, kind="soft", phase=None)
    assert profiler.totals == {
        (UNACCOUNTED, "intr.hard", "rx-intr"): 2.0,
        # Phase falls back to the slice kind when unlabelled.
        (UNACCOUNTED, "intr.soft", "soft"): 3.0,
    }


def test_slice_start_backdates_by_duration():
    """cpu.slice is published when the slice ends; the stored slice
    must start ``amount_us`` earlier so exports draw real intervals."""
    bus = TraceBus()
    profiler = SimProfiler(bus)
    _slice(bus, 100.0, 40.0, "c1")
    (stored,) = profiler.slices
    assert stored.start_us == 60.0
    assert stored.duration_us == 40.0
    assert stored.entity == "t1"


def test_aggregate_only_mode_keeps_no_slices():
    bus = TraceBus()
    profiler = SimProfiler(bus, keep_slices=False)
    _slice(bus, 1.0, 1.0, "c1")
    assert profiler.slices is None
    assert profiler.total_us == 1.0


def test_container_queries():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    _slice(bus, 1.0, 5.0, "a", phase="x")
    _slice(bus, 2.0, 7.0, "a", phase="y")
    _slice(bus, 3.0, 11.0, "b")
    assert profiler.container_totals() == {"a": 12.0, "b": 11.0}
    assert profiler.charged_us("a") == 12.0
    assert profiler.charged_us("missing") == 0.0


def test_render_lists_top_triples():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    _slice(bus, 1.0, 9.0, "big", phase="work")
    _slice(bus, 2.0, 1.0, "small", phase="other")
    rendered = profiler.render(limit=1)
    assert "big" in rendered
    assert "(1 more)" in rendered
