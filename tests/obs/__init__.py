"""Observability layer tests."""
