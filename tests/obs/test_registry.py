"""Metrics registry semantics."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments_and_rejects_negatives():
    counter = Counter()
    counter.inc()
    counter.inc(4.5)
    assert counter.value == pytest.approx(5.5)
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_holds_last_value():
    gauge = Gauge()
    gauge.set(3.0)
    gauge.set(-7.0)  # gauges may go negative (e.g. a drift measure)
    assert gauge.value == -7.0


def test_histogram_buckets_and_moments():
    histogram = Histogram(buckets=(10.0, 100.0, 1000.0))
    for v in (5.0, 10.0, 50.0, 5_000.0):
        histogram.observe(v)
    # Cumulative-style placement: value <= bound lands in that bucket.
    assert histogram.bucket_counts == [2, 1, 0]
    assert histogram.overflow == 1
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(5_065.0)
    assert histogram.min == 5.0
    assert histogram.max == 5_000.0
    assert histogram.mean() == pytest.approx(5_065.0 / 4)


def test_histogram_empty_mean_is_none():
    assert Histogram().mean() is None


def test_histogram_quantile_bucket_resolution():
    histogram = Histogram(buckets=(10.0, 100.0, 1000.0))
    for _ in range(99):
        histogram.observe(50.0)
    histogram.observe(500.0)
    # Quantiles resolve to bucket upper bounds: coarse but monotone.
    assert histogram.quantile(0.5) == 100.0
    assert histogram.quantile(1.0) == 1000.0


def test_histogram_requires_ascending_bounds():
    with pytest.raises(ValueError):
        Histogram(buckets=(100.0, 10.0))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("c1", "net", "drops")
    b = registry.counter("c1", "net", "drops")
    assert a is b
    assert len(registry) == 1


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("c1", "net", "drops")
    with pytest.raises(TypeError):
        registry.gauge("c1", "net", "drops")
    with pytest.raises(TypeError):
        registry.histogram("c1", "net", "drops")


def test_registry_histogram_redeclare_with_other_buckets_raises():
    registry = MetricsRegistry()
    registry.histogram("c1", "app", "lat", buckets=(1.0, 2.0))
    # Same buckets: fine. Different buckets: the metric identity would
    # silently change shape, so it is an error.
    registry.histogram("c1", "app", "lat", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("c1", "app", "lat", buckets=(1.0, 3.0))


def test_registry_default_histogram_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram("c1", "client", "latency_us")
    assert histogram.buckets == DEFAULT_BUCKETS_US


def test_registry_snapshot_is_sorted_and_json_safe():
    registry = MetricsRegistry()
    registry.counter("zeta", "net", "drops").inc(2)
    registry.gauge("alpha", "sched", "runnable").set(3.0)
    registry.histogram("alpha", "client", "latency_us").observe(250.0)
    snapshot = registry.snapshot()
    keys = [
        (m["container"], m["subsystem"], m["name"]) for m in snapshot
    ]
    assert keys == sorted(keys)
    # Round-trips through JSON without custom encoders.
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_registry_reset_drops_all_metrics():
    """Reset models a measurement-window restart: metrics are dropped
    wholesale and lazily re-created on next use, so warm-up samples
    cannot leak into the measured window."""
    registry = MetricsRegistry()
    registry.counter("c1", "net", "drops").inc(5)
    registry.histogram("c1", "client", "latency_us").observe(100.0)
    registry.reset()
    assert len(registry) == 0
    assert registry.get("c1", "net", "drops") is None
    fresh = registry.histogram("c1", "client", "latency_us")
    assert fresh.count == 0
    assert fresh.mean() is None


def test_registry_render_mentions_metrics():
    registry = MetricsRegistry()
    registry.counter("c1", "net", "drops").inc(7)
    rendered = registry.render()
    assert "c1" in rendered
    assert "drops" in rendered
