"""SLO rules, burn-rate gating, top-k attribution, and the watchdog."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    BurnRateRule,
    OverloadWatchdog,
    ThresholdRule,
    TopKRule,
    default_rules,
)
from repro.obs.timeseries import TimeSeriesPipeline, WindowRollup
from repro.sim.tracing import TraceBus

WINDOW = 100.0


def _rollup(index=0, deltas=None, gauges=None, latency=None,
            span=WINDOW) -> WindowRollup:
    rollup = WindowRollup(index, index * span, (index + 1) * span)
    rollup.deltas = dict(deltas or {})
    rollup.gauges = dict(gauges or {})
    rollup.latency = dict(latency or {})
    return rollup


def _pipeline(rules=None):
    bus = TraceBus()
    registry = MetricsRegistry()
    pipeline = TimeSeriesPipeline(
        registry, bus, window_us=WINDOW, rules=rules
    )
    return bus, registry, pipeline


# ---------------------------------------------------------------------------
# ThresholdRule
# ---------------------------------------------------------------------------


def test_threshold_rule_on_rate():
    rule = ThresholdRule("r", "net", "syns", source="rate", threshold=1e4)
    quiet = _rollup(deltas={("a", "net", "syns"): 0.5})
    assert rule.evaluate(quiet, None) == []
    # 2 SYNs over 100us = 2e4/s across containers.
    busy = _rollup(deltas={
        ("a", "net", "syns"): 1.5, ("b", "net", "syns"): 0.5,
    })
    drafts = rule.evaluate(busy, None)
    assert len(drafts) == 1
    assert drafts[0].value == pytest.approx(2e4)
    assert drafts[0].container == "*"


def test_threshold_rule_on_gauge_and_below():
    rule = ThresholdRule("g", "net", "depth", source="gauge",
                         threshold=10.0, above=False)
    assert rule.evaluate(_rollup(gauges={("a", "net", "depth"): 50.0}),
                         None) == []
    drafts = rule.evaluate(_rollup(gauges={("a", "net", "depth"): 3.0}),
                           None)
    assert drafts and drafts[0].value == 3.0
    # Absent gauge: no value, no alert.
    assert rule.evaluate(_rollup(), None) == []


def test_threshold_rule_on_quantile_takes_worst_container():
    rule = ThresholdRule("q", "client", "latency_us", source="p99",
                         threshold=100.0)
    rollup = _rollup(latency={
        ("a", "client", "latency_us"): {"count": 5, "p99": 50.0},
        ("b", "client", "latency_us"): {"count": 5, "p99": 150.0},
    })
    drafts = rule.evaluate(rollup, None)
    assert drafts and drafts[0].value == 150.0


def test_threshold_rule_rejects_unknown_severity():
    with pytest.raises(ValueError):
        ThresholdRule("x", "a", "b", threshold=1.0, severity="fatal")


# ---------------------------------------------------------------------------
# BurnRateRule
# ---------------------------------------------------------------------------


def test_burn_rate_requires_fast_and_slow_arms():
    rule = BurnRateRule(
        "b", bad=("net", "drops"), total=("net", "syns"),
        objective=0.01, factor=2.0, fast_windows=1, slow_windows=3,
        min_total=10.0,
    )
    # Three clean windows, then a single hot one (5% drops): the fast
    # arm burns at 5x but the slow arm is diluted to 1.67x -> no alert.
    for index in range(3):
        assert rule.evaluate(
            _rollup(index, deltas={("a", "net", "syns"): 100.0}), None
        ) == []
    hot = {("a", "net", "drops"): 5.0, ("a", "net", "syns"): 100.0}
    assert rule.evaluate(_rollup(3, deltas=hot), None) == []
    # A second hot window pushes the slow arm to 3.3x: both burn -> page.
    drafts = rule.evaluate(_rollup(4, deltas=hot), None)
    assert drafts
    assert drafts[0].kind == "burn_rate"
    assert drafts[0].value >= 2.0


def test_burn_rate_min_total_suppresses_sparse_windows():
    rule = BurnRateRule(
        "b", bad=("net", "drops"), total=("net", "syns"),
        objective=0.01, min_total=50.0, slow_windows=2,
    )
    # 100% drop ratio but only 3 events: below min_total, stays quiet.
    sparse = {("a", "net", "drops"): 3.0, ("a", "net", "syns"): 3.0}
    assert rule.evaluate(_rollup(0, deltas=sparse), None) == []


def test_burn_rate_from_latency_objective_labels():
    rule = BurnRateRule(
        "lat", latency=("client", "latency_us", 50_000.0),
        objective=0.05, factor=2.0, fast_windows=1, slow_windows=1,
        min_total=10.0,
    )
    summary = {"count": 100, "above_50000": 30.0}
    rollup = _rollup(latency={("a", "client", "latency_us"): summary})
    drafts = rule.evaluate(rollup, None)
    assert drafts
    # 30% bad vs a 5% objective = 6x burn.
    assert drafts[0].value == pytest.approx(6.0)


def test_burn_rate_constructor_validation():
    with pytest.raises(ValueError):
        BurnRateRule("x", objective=0.01)  # neither counters nor latency
    with pytest.raises(ValueError):
        BurnRateRule("x", bad=("a", "b"), total=("a", "c"), objective=0.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", bad=("a", "b"), total=("a", "c"),
                     objective=0.01, fast_windows=3, slow_windows=2)


# ---------------------------------------------------------------------------
# TopKRule
# ---------------------------------------------------------------------------


def test_top_k_blames_the_dominant_tenant():
    rule = TopKRule("noisy", "cpu", "charged_us", k=2, min_total=50.0,
                    share_threshold=0.6)
    rollup = _rollup(deltas={
        ("big", "cpu", "charged_us"): 80.0,
        ("small", "cpu", "charged_us"): 20.0,
    })
    drafts = rule.evaluate(rollup, None)
    assert drafts
    assert drafts[0].container == "big"
    assert drafts[0].value == pytest.approx(0.8)
    assert "big=80%" in drafts[0].message


def test_top_k_skips_machine_lanes_and_balanced_load():
    rule = TopKRule("noisy", "cpu", "charged_us", min_total=50.0,
                    share_threshold=0.6)
    # Machine lanes and sinks are excluded from attribution entirely.
    machine_only = _rollup(deltas={
        ("core:0", "cpu", "charged_us"): 500.0,
        ("<unaccounted>", "cpu", "charged_us"): 500.0,
    })
    assert rule.evaluate(machine_only, None) == []
    balanced = _rollup(deltas={
        ("a", "cpu", "charged_us"): 50.0,
        ("b", "cpu", "charged_us"): 50.0,
    })
    assert rule.evaluate(balanced, None) == []


# ---------------------------------------------------------------------------
# Pipeline integration: alert stamping and obs.alert records
# ---------------------------------------------------------------------------


def test_pipeline_stamps_alerts_and_publishes_records():
    rule = ThresholdRule("depth", "net", "depth", source="gauge",
                         threshold=10.0)
    bus = TraceBus()
    seen = []
    bus.subscribe("obs.alert", lambda record: seen.append(record))
    registry = MetricsRegistry()
    pipeline = TimeSeriesPipeline(registry, bus, window_us=WINDOW,
                                  rules=[rule])
    gauge = registry.gauge("a", "net", "depth")
    gauge.set(50.0)
    pipeline._advance(101.0)
    gauge.set(60.0)
    pipeline._advance(201.0)
    assert [alert.seq for alert in pipeline.alerts] == [0, 1]
    assert [alert.time_us for alert in pipeline.alerts] == [100.0, 200.0]
    assert pipeline.rollups[-1].alerts == [pipeline.alerts[-1]]
    assert len(seen) == 2
    assert seen[0].data["rule"] == "depth"
    assert seen[0].data["severity"] == "warn"
    # Rollup dumps reference alerts by seq.
    assert pipeline.rollups[-1].to_dict()["alerts"] == [1]


def test_default_rules_cover_the_standard_vocabulary():
    rules = default_rules(WINDOW)
    names = {rule.name for rule in rules}
    assert {"syn-backlog", "syn-drop-burn", "latency-slo-burn",
            "mem-residency", "cpu-noisy-neighbor"} <= names


# ---------------------------------------------------------------------------
# OverloadWatchdog
# ---------------------------------------------------------------------------


def _watched_pipeline(threshold=10.0, recovery_windows=2):
    rule = ThresholdRule("depth", "net", "depth", source="gauge",
                         threshold=threshold)
    bus, registry, pipeline = _pipeline(rules=[rule])
    watchdog = OverloadWatchdog(pipeline, recovery_windows=recovery_windows)
    gauge = registry.gauge("a", "net", "depth")
    return pipeline, watchdog, gauge


def test_watchdog_escalates_and_recovers_with_hysteresis():
    pipeline, watchdog, gauge = _watched_pipeline(recovery_windows=2)
    gauge.set(50.0)  # warn alert -> <host> goes warn
    pipeline._advance(101.0)
    assert watchdog.health() == {"<host>": "warn"}
    assert watchdog.worst_state() == "warn"
    gauge.set(0.0)   # clean window 1 of 2: still warn
    pipeline._advance(201.0)
    assert watchdog.health() == {"<host>": "warn"}
    pipeline._advance(301.0)  # clean window 2 of 2: decays to ok
    assert watchdog.health() == {"<host>": "ok"}
    states = [(t.previous, t.state) for t in watchdog.transitions]
    assert states == [("ok", "warn"), ("warn", "ok")]
    assert watchdog.transitions[-1].time_us == 300.0


def test_watchdog_page_saturates_and_alerts_reset_recovery():
    rule = ThresholdRule("depth", "net", "depth", source="gauge",
                         threshold=10.0, severity="page")
    bus, registry, pipeline = _pipeline(rules=[rule])
    watchdog = OverloadWatchdog(pipeline, recovery_windows=2)
    gauge = registry.gauge("a", "net", "depth")
    gauge.set(50.0)
    pipeline._advance(101.0)
    assert watchdog.health() == {"<host>": "saturated"}
    gauge.set(0.0)
    pipeline._advance(201.0)           # clean 1
    gauge.set(50.0)
    pipeline._advance(301.0)           # fresh alert resets the count
    gauge.set(0.0)
    pipeline._advance(401.0)           # clean 1 (again)
    assert watchdog.health() == {"<host>": "saturated"}
    pipeline._advance(501.0)           # clean 2: one level down only
    assert watchdog.health() == {"<host>": "warn"}
    assert watchdog.worst_state() == "warn"


def test_watchdog_blames_named_containers():
    rule = TopKRule("noisy", "cpu", "charged_us", min_total=10.0,
                    share_threshold=0.6)
    bus, registry, pipeline = _pipeline(rules=[rule])
    watchdog = OverloadWatchdog(pipeline)
    registry.counter("big", "cpu", "charged_us").inc(90)
    registry.counter("small", "cpu", "charged_us").inc(10)
    pipeline._advance(101.0)
    assert watchdog.health() == {"big": "warn"}
    assert watchdog.transitions[0].reason == "alert noisy"


def test_watchdog_rejects_zero_recovery():
    bus, registry, pipeline = _pipeline()
    with pytest.raises(ValueError):
        OverloadWatchdog(pipeline, recovery_windows=0)
