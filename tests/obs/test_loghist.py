"""Property tests for the log-bucketed latency histogram.

Pins the two guarantees the windowed-telemetry layer builds on: merges
are associative/commutative (per-window histograms re-aggregate into
sliding windows in any grouping), and quantile estimates carry the
one-sided relative error bound ``exact <= estimate <= max(exact *
growth, min_value)``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.loghist import DEFAULT_GROWTH, LogHistogram

#: Latency-like positive samples spanning the whole dynamic range the
#: pipeline sees (sub-us to tens of seconds).
samples = st.floats(
    min_value=0.0, max_value=5e7, allow_nan=False, allow_infinity=False
)


def _exact_quantile(values: list, q: float) -> float:
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _fill(values: list) -> LogHistogram:
    hist = LogHistogram()
    for value in values:
        hist.observe(value)
    return hist


def test_constructor_validation():
    with pytest.raises(ValueError):
        LogHistogram(growth=1.0)
    with pytest.raises(ValueError):
        LogHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        LogHistogram().observe(-1.0)
    with pytest.raises(ValueError):
        LogHistogram().quantile(1.5)


def test_empty_histogram_reads_none():
    hist = LogHistogram()
    assert hist.mean() is None
    assert hist.quantile(0.99) is None
    assert hist.count_above(10.0) == 0


@given(st.lists(samples, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_bucket_invariant(values):
    """Every sample lands in the bucket whose bounds contain it."""
    hist = _fill(values)
    for value in values:
        index = hist.bucket_index(value)
        assert value <= hist.upper_bound(index)
        if index > 0:
            assert value > hist.upper_bound(index - 1)


def test_boundary_samples_bucket_deterministically():
    """Samples placed exactly on bucket upper bounds stay in-bucket
    despite float log() rounding (the one-step correction)."""
    hist = LogHistogram()
    for index in range(0, 120, 7):
        value = hist.upper_bound(index)
        assert hist.bucket_index(value) == index


@given(st.lists(samples, min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_quantile_error_bound(values):
    """exact <= estimate <= max(exact * growth, min_value)."""
    hist = _fill(values)
    for q in (0.5, 0.95, 0.99, 0.999):
        exact = _exact_quantile(values, q)
        estimate = hist.quantile(q)
        assert estimate >= exact or math.isclose(estimate, exact)
        ceiling = max(exact * hist.growth, hist.min_value)
        assert estimate <= ceiling or math.isclose(estimate, ceiling)


@given(
    st.lists(st.lists(samples, max_size=60), min_size=3, max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_merge_associative_and_commutative(groups):
    """(a + b) + c == a + (b + c) == (c + b) + a, field for field."""
    a, b, c = (_fill(group) for group in groups)

    left = _fill(groups[0]).merge(_fill(groups[1])).merge(_fill(groups[2]))
    bc = _fill(groups[1]).merge(_fill(groups[2]))
    right = _fill(groups[0]).merge(bc)
    reversed_ = _fill(groups[2]).merge(_fill(groups[1])).merge(_fill(groups[0]))

    for other in (right, reversed_):
        assert left.counts == other.counts
        assert left.count == other.count
        assert left.min == other.min
        assert left.max == other.max
        assert math.isclose(left.sum, other.sum, abs_tol=1e-6)
    # The merge equals folding every sample into one histogram.
    flat = _fill([v for group in groups for v in group])
    assert left.counts == flat.counts


def test_merge_rejects_mismatched_scales():
    with pytest.raises(ValueError):
        LogHistogram(growth=1.15).merge(LogHistogram(growth=1.5))


def test_merge_does_not_alias_other():
    a = _fill([1.0, 10.0])
    b = _fill([100.0])
    a.merge(b)
    assert b.count == 1 and len(b.counts) == 1


@given(st.lists(samples, min_size=1, max_size=200), samples)
@settings(max_examples=100, deadline=None)
def test_count_above_is_a_provable_undercount(values, threshold):
    """count_above never exceeds the true count above the threshold,
    and misses at most one bucket's population."""
    hist = _fill(values)
    true_above = sum(1 for v in values if v > threshold)
    counted = hist.count_above(threshold)
    assert counted <= true_above
    sharing = hist.counts.get(hist.bucket_index(threshold), 0)
    assert true_above - counted <= sharing


def test_memory_is_bounded_by_buckets_not_samples():
    hist = LogHistogram()
    for i in range(100_000):
        hist.observe(1.0 + (i % 64))
    assert hist.count == 100_000
    assert len(hist.counts) < 40  # 1..65us spans ~30 buckets at 15% growth


def test_summary_labels_and_copy():
    hist = _fill([5.0, 50.0, 500.0])
    summary = hist.summary()
    assert summary["count"] == 3
    assert {"p50", "p95", "p99", "p99_9"} <= set(summary)
    twin = hist.copy()
    twin.observe(5000.0)
    assert hist.count == 3 and twin.count == 4
