"""Request-span stitching from synthetic trace records."""

from repro.obs.spans import RequestTracer, SPAN_CATEGORIES
from repro.sim.tracing import TraceBus


def _tracer():
    bus = TraceBus()
    return bus, RequestTracer(bus)


def _drive_full_request(bus, req=1, seq=5, t0=100.0):
    """Publish the record sequence of one successful request."""
    bus.publish(t0, "net.arrival", seq=seq, kind="data", req=req,
                client="premium")
    bus.publish(t0 + 1.0, "net.enqueue", seq=seq, container="httpd:conn",
                thread="knet", dropped=False)
    bus.publish(t0 + 5.0, "net.proto", seq=seq, kind="data")
    bus.publish(t0 + 6.0, "app.request", event="start", req=req,
                container="httpd:class:default", server="httpd")
    bus.publish(t0 + 20.0, "app.request", event="end", req=req,
                container="httpd:class:default", server="httpd")
    bus.publish(t0 + 21.0, "net.tx", req=req, container="httpd:conn",
                bytes=1024)
    bus.publish(t0 + 40.0, "client.complete", req=req, client="premium",
                latency_us=40.0)


def test_subscribes_to_every_span_category():
    bus, _tr = _tracer()
    for category in SPAN_CATEGORIES:
        assert category in bus._subscribers


def test_full_request_builds_span_tree():
    bus, tracer = _tracer()
    _drive_full_request(bus)
    completed = tracer.completed_requests()
    assert len(completed) == 1
    root = completed[0]
    assert root.name == "request"
    assert root.start_us == 100.0
    assert root.end_us == 140.0
    assert root.attrs["latency_us"] == 40.0
    children = tracer.children_of(root)
    assert [c.name for c in children] == [
        "net.protocol", "app", "net.response"
    ]
    proto, app, response = children
    assert not any(c.open for c in children)
    assert proto.container == "httpd:conn"  # set at enqueue time
    assert app.container == "httpd:class:default"
    assert proto.duration_us() == 5.0
    assert app.duration_us() == 14.0
    assert response.duration_us() == 19.0
    # Phase costs sum below/at the root's wall time.
    assert tracer.request_cost_us(root) <= root.duration_us()


def test_requestless_packet_gets_standalone_span():
    bus, tracer = _tracer()
    bus.publish(10.0, "net.arrival", seq=1, kind="syn", req=None,
                client=None)
    bus.publish(13.0, "net.proto", seq=1, kind="syn")
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.name == "net.packet"
    assert span.parent_id is None
    assert span.attrs["kind"] == "syn"
    assert span.duration_us() == 3.0
    assert tracer.completed_requests() == []


def test_dropped_enqueue_closes_protocol_span():
    bus, tracer = _tracer()
    bus.publish(10.0, "net.arrival", seq=2, kind="data", req=7,
                client="c")
    bus.publish(11.0, "net.enqueue", seq=2, container="victim",
                thread="knet", dropped=True)
    proto = next(s for s in tracer.spans if s.name == "net.protocol")
    assert not proto.open
    assert proto.end_us == 11.0
    assert proto.attrs["dropped"] is True
    assert proto.container == "victim"
    # The root stays open: the request never completed.
    root = next(s for s in tracer.spans if s.name == "request")
    assert root.open


def test_duplicate_tx_records_open_one_response_span():
    bus, tracer = _tracer()
    bus.publish(1.0, "net.arrival", seq=3, kind="data", req=9, client="c")
    bus.publish(2.0, "net.tx", req=9, container="conn", bytes=512)
    bus.publish(3.0, "net.tx", req=9, container="conn", bytes=512)
    responses = [s for s in tracer.spans if s.name == "net.response"]
    assert len(responses) == 1
    assert responses[0].start_us == 2.0  # first transmission wins


def test_span_ids_are_sequential_and_stable():
    bus, tracer = _tracer()
    _drive_full_request(bus, req=1, seq=5)
    _drive_full_request(bus, req=2, seq=6, t0=200.0)
    assert [s.span_id for s in tracer.spans] == list(
        range(1, len(tracer.spans) + 1)
    )


def test_to_dict_is_json_shaped_with_sorted_attrs():
    bus, tracer = _tracer()
    _drive_full_request(bus)
    root = tracer.completed_requests()[0]
    out = root.to_dict()
    assert out["type"] == "span"
    assert out["name"] == "request"
    assert list(out["attrs"]) == sorted(out["attrs"])


def test_unknown_correlation_ids_are_ignored():
    bus, tracer = _tracer()
    # Records referencing ids the tracer never saw must not raise.
    bus.publish(1.0, "net.proto", seq=999, kind="data")
    bus.publish(2.0, "net.enqueue", seq=999, container="x", dropped=False)
    bus.publish(3.0, "app.request", event="end", req=999)
    bus.publish(4.0, "client.complete", req=999, client="c",
                latency_us=1.0)
    bus.publish(5.0, "net.tx", req=None)
    assert tracer.spans == []
