"""Windowed time-series pipeline: window machinery, aggregates, bounds.

The pipeline is driven purely by trace-record timestamps, so every test
here drives it the same way production does: publish records on a
:class:`TraceBus` (or call the internal ``_advance`` with explicit sim
times, which is what those records do).
"""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_SERIES_CAP,
    SeriesBuffer,
    TimeSeriesPipeline,
)
from repro.sim.tracing import TraceBus

WINDOW = 100.0


def _pipeline(**kwargs):
    bus = TraceBus()
    registry = MetricsRegistry()
    pipeline = TimeSeriesPipeline(
        registry, bus, window_us=WINDOW, **kwargs
    )
    return bus, registry, pipeline


# ---------------------------------------------------------------------------
# SeriesBuffer
# ---------------------------------------------------------------------------


def test_series_buffer_cap_and_drop_counter():
    series = SeriesBuffer(cap=3)
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert len(series) == 3
    assert series.dropped_points == 2
    assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.last(2) == [30.0, 40.0]
    mean, worst, count = series.tail_stats(2)
    assert (mean, worst, count) == (35.0, 40.0, 2)


def test_series_buffer_rejects_zero_cap():
    with pytest.raises(ValueError):
        SeriesBuffer(cap=0)


# ---------------------------------------------------------------------------
# Window machinery
# ---------------------------------------------------------------------------


def test_windows_close_lazily_on_record_timestamps():
    bus, registry, pipeline = _pipeline()
    counter = registry.counter("A", "cpu", "charged_us")
    counter.inc(10)
    assert pipeline.windows_closed == 0
    # A record inside the first window closes nothing.
    bus.publish(50.0, "cpu.slice", amount_us=1.0)
    assert pipeline.windows_closed == 0
    # A record past the boundary closes the elapsed window first.
    bus.publish(150.0, "cpu.slice", amount_us=1.0)
    assert pipeline.windows_closed == 1
    rollup = pipeline.rollups[-1]
    assert (rollup.start_us, rollup.end_us) == (0.0, 100.0)
    assert not rollup.partial


def test_one_late_record_closes_every_elapsed_window():
    bus, registry, pipeline = _pipeline()
    registry.counter("A", "cpu", "charged_us").inc(1)
    bus.publish(550.0, "cpu.slice", amount_us=1.0)
    assert pipeline.windows_closed == 5
    # Only the first window saw the delta; the rest were idle.
    assert pipeline.rollups[0].deltas == {("A", "cpu", "charged_us"): 1.0}
    for rollup in list(pipeline.rollups)[1:]:
        assert rollup.deltas == {}
        assert rollup.active_keys == 0


def test_pipeline_rejects_nonpositive_window():
    bus = TraceBus()
    with pytest.raises(ValueError):
        TimeSeriesPipeline(MetricsRegistry(), bus, window_us=0.0)


def test_finish_closes_partial_tail_and_is_idempotent():
    bus, registry, pipeline = _pipeline()
    counter = registry.counter("A", "cpu", "charged_us")
    counter.inc(10)
    pipeline._advance(101.0)  # w1 takes the first delta
    counter.inc(5)            # activity after the last boundary
    pipeline.finish(150.0)
    assert pipeline.windows_closed == 2
    tail = pipeline.rollups[-1]
    assert tail.partial
    assert tail.span_us == 50.0
    assert tail.deltas == {("A", "cpu", "charged_us"): 5.0}
    # 5 over 50us = 1e5/s: partial spans scale rates by true span.
    assert tail.rates[("A", "cpu", "charged_us")] == pytest.approx(1e5)
    pipeline.finish(150.0)
    assert pipeline.windows_closed == 2  # idempotent: no empty re-close


def test_finish_skips_empty_tail():
    bus, registry, pipeline = _pipeline()
    registry.counter("A", "cpu", "charged_us")
    pipeline.finish(250.0)
    assert pipeline.windows_closed == 2
    assert all(not r.partial for r in pipeline.rollups)


# ---------------------------------------------------------------------------
# Counter aggregates: deltas, rates, EWMA, sliding
# ---------------------------------------------------------------------------


def test_deltas_rates_and_pair_aggregates():
    bus, registry, pipeline = _pipeline()
    a = registry.counter("A", "cpu", "charged_us")
    b = registry.counter("B", "cpu", "charged_us")
    a.inc(90)
    b.inc(10)
    pipeline._advance(101.0)
    rollup = pipeline.rollups[-1]
    assert rollup.deltas == {
        ("A", "cpu", "charged_us"): 90.0,
        ("B", "cpu", "charged_us"): 10.0,
    }
    assert rollup.active_keys == 2
    # 90 over a 100us window = 900k/s.
    assert rollup.rates[("A", "cpu", "charged_us")] == pytest.approx(9e5)
    assert rollup.delta_sum("cpu", "charged_us") == pytest.approx(100.0)
    assert rollup.rate_sum("cpu", "charged_us") == pytest.approx(1e6)
    assert sorted(rollup.pair_items("cpu", "charged_us")) == [
        ("A", 90.0), ("B", 10.0),
    ]
    assert rollup.pair_items("net", "syns") == []


def test_ewma_blends_and_decays_when_idle():
    bus, registry, pipeline = _pipeline(ewma_alpha=0.3)
    a = registry.counter("A", "cpu", "x")
    key = ("A", "cpu", "x")
    a.inc(10)            # w1: rate 1e5 -> first-seen EWMA = rate
    pipeline._advance(101.0)
    assert pipeline.rollups[-1].ewma[key] == pytest.approx(1e5)
    a.inc(20)            # w2: rate 2e5 -> 0.3*2e5 + 0.7*1e5
    pipeline._advance(201.0)
    assert pipeline.rollups[-1].ewma[key] == pytest.approx(1.3e5)
    pipeline._advance(301.0)  # w3 idle: decays toward zero, stays listed
    assert pipeline.rollups[-1].ewma[key] == pytest.approx(0.7 * 1.3e5)
    assert pipeline.rollups[-1].deltas == {}


def test_never_active_keys_stay_out_of_ewma():
    bus, registry, pipeline = _pipeline()
    registry.counter("A", "cpu", "x").inc(1)
    registry.counter("B", "cpu", "x")  # registered, never incremented
    pipeline._advance(101.0)
    assert ("B", "cpu", "x") not in pipeline.rollups[-1].ewma


def test_sliding_mean_max_with_idle_windows_as_zero():
    bus, registry, pipeline = _pipeline(slow_windows=5)
    a = registry.counter("A", "cpu", "x")
    b = registry.counter("B", "cpu", "x")
    a.inc(10)                 # w1: A rate 1e5, B idle
    pipeline._advance(101.0)
    assert pipeline.rollups[-1].sliding[("A", "cpu", "x")] == (1e5, 1e5, 1)
    a.inc(20)                 # w2: A rate 2e5, B first activity (4e4)
    b.inc(4)
    pipeline._advance(201.0)
    sliding = pipeline.rollups[-1].sliding
    # Uniform n across keys; B's pre-existence window counts as zero.
    assert sliding[("A", "cpu", "x")] == (
        pytest.approx(1.5e5), pytest.approx(2e5), 2
    )
    assert sliding[("B", "cpu", "x")] == (
        pytest.approx(2e4), pytest.approx(4e4), 2
    )
    pipeline._advance(301.0)  # w3 idle: no active keys -> empty view
    assert pipeline.rollups[-1].sliding == {}
    a.inc(30)                 # w4: A active again; w3's zero dilutes mean
    pipeline._advance(401.0)
    mean, worst, n = pipeline.rollups[-1].sliding[("A", "cpu", "x")]
    assert n == 4
    assert mean == pytest.approx((1e5 + 2e5 + 0.0 + 3e5) / 4)
    assert worst == pytest.approx(3e5)


def test_sliding_span_is_capped_at_slow_windows():
    bus, registry, pipeline = _pipeline(slow_windows=2)
    a = registry.counter("A", "cpu", "x")
    for i in range(4):
        a.inc(10 * (i + 1))
        pipeline._advance((i + 1) * WINDOW + 1.0)
    mean, worst, n = pipeline.rollups[-1].sliding[("A", "cpu", "x")]
    assert n == 2  # only the newest two windows (rates 3e5, 4e5)
    assert mean == pytest.approx(3.5e5)
    assert worst == pytest.approx(4e5)


def test_rate_series_is_sparse_but_sliding_is_dense():
    bus, registry, pipeline = _pipeline()
    a = registry.counter("A", "cpu", "x")
    a.inc(10)
    pipeline._advance(101.0)
    pipeline._advance(201.0)  # idle
    a.inc(10)
    pipeline._advance(301.0)
    series = pipeline.series(("A", "cpu", "x", "rate"))
    # No point for the idle window: series stay sparse.
    assert [t for t, _ in series.points()] == [100.0, 300.0]


def test_registry_growth_mid_run_extends_partition():
    bus, registry, pipeline = _pipeline()
    registry.counter("A", "cpu", "x").inc(1)
    pipeline._advance(101.0)
    late = registry.counter("Z", "net", "syns")  # registered after w1
    late.inc(7)
    pipeline._advance(201.0)
    rollup = pipeline.rollups[-1]
    assert rollup.deltas == {("Z", "net", "syns"): 7.0}
    assert rollup.delta_sum("net", "syns") == 7.0


# ---------------------------------------------------------------------------
# Gauges and samplers
# ---------------------------------------------------------------------------


def test_gauges_snapshot_every_window():
    bus, registry, pipeline = _pipeline()
    gauge = registry.gauge("A", "net", "depth")
    gauge.set(5.0)
    pipeline._advance(101.0)
    gauge.set(9.0)
    pipeline._advance(201.0)
    assert [r.gauges[("A", "net", "depth")] for r in pipeline.rollups] == [
        5.0, 9.0,
    ]
    series = pipeline.series(("A", "net", "depth", "gauge"))
    assert series.points() == [(100.0, 5.0), (200.0, 9.0)]
    assert pipeline.rollups[-1].gauge_max("net", "depth") == 9.0


def test_samplers_feed_gauges_at_close_time():
    bus, registry, pipeline = _pipeline()
    pipeline.add_sampler(lambda now: [("A", "mem", "resident", now * 2.0)])
    pipeline._advance(101.0)
    assert pipeline.rollups[-1].gauges[("A", "mem", "resident")] == 200.0


# ---------------------------------------------------------------------------
# Latency histograms
# ---------------------------------------------------------------------------


def test_latency_records_fold_into_window_summaries():
    bus, registry, pipeline = _pipeline()
    for latency in (10.0, 20.0, 40.0):
        bus.publish(50.0, "client.complete", req=1, client="c",
                    latency_us=latency)
    bus.publish(150.0, "cpu.slice", amount_us=1.0)  # close w1
    rollup = pipeline.rollups[-1]
    summary = rollup.latency[("c", "client", "latency_us")]
    assert summary["count"] == 3
    assert summary["p50"] >= 20.0
    # Quantile series materialize under suffixed keys.
    assert pipeline.series(("c", "client", "latency_us", "p99")) is not None
    # Histograms are per-window: the next window starts fresh.
    bus.publish(250.0, "cpu.slice", amount_us=1.0)
    assert pipeline.rollups[-1].latency == {}


def test_latency_merged_weights_by_count():
    bus, registry, pipeline = _pipeline()
    bus.publish(10.0, "client.complete", req=1, client="a", latency_us=10.0)
    bus.publish(10.0, "client.complete", req=2, client="a", latency_us=10.0)
    bus.publish(10.0, "client.complete", req=3, client="b", latency_us=40.0)
    pipeline.finish(50.0)
    merged = pipeline.rollups[-1].latency_merged("client", "latency_us")
    assert merged["count"] == 3
    assert merged["mean"] == pytest.approx(20.0)
    assert merged["max"] == pytest.approx(40.0)


# ---------------------------------------------------------------------------
# Retention bounds and determinism
# ---------------------------------------------------------------------------


def test_retention_cap_bounds_series_and_counts_drops():
    bus, registry, pipeline = _pipeline(series_cap=10)
    a = registry.counter("A", "cpu", "x")
    for i in range(25):
        a.inc(1)
        pipeline._advance((i + 1) * WINDOW + 1.0)
    series = pipeline.series(("A", "cpu", "x", "rate"))
    assert len(series) == 10
    assert series.dropped_points == 15
    assert pipeline.dropped_points == 15
    # The rollup ring obeys the same cap discipline.
    assert len(pipeline.rollups) == 10
    assert pipeline.dropped_rollups == 15


def test_million_event_run_stays_in_fixed_memory_envelope():
    """10^6 counter observations across 10^4 windows: retention stays
    bounded by cap * series, drops are counted, nothing accumulates."""
    bus, registry, pipeline = _pipeline()
    counters = [
        registry.counter(f"c{i}", "cpu", "charged_us") for i in range(4)
    ]
    events = 0
    window_index = 0
    while events < 1_000_000:
        for counter in counters:
            counter.inc(25)
            events += 25
        window_index += 1
        pipeline._advance(window_index * WINDOW + 1.0)
    assert events == 1_000_000
    assert pipeline.windows_closed == window_index
    cap = DEFAULT_SERIES_CAP
    assert len(pipeline.rollups) == cap
    assert pipeline.retained_points <= cap * len(pipeline._series)
    assert pipeline.dropped_points == len(counters) * (window_index - cap)
    # The per-key series really did evict from the front.
    series = pipeline.series(("c0", "cpu", "charged_us", "rate"))
    assert len(series) == cap


def test_identical_runs_produce_identical_rollup_dumps():
    def run() -> list:
        bus, registry, pipeline = _pipeline()
        a = registry.counter("A", "cpu", "x")
        g = registry.gauge("A", "net", "depth")
        for i in range(7):
            a.inc(3 * (i % 3))
            g.set(float(i))
            bus.publish(20.0 + i * 40.0, "client.complete", req=i,
                        client="A", latency_us=10.0 * (i + 1))
            pipeline._advance((i + 1) * WINDOW + 1.0)
        pipeline.finish(760.0)
        return [rollup.to_dict() for rollup in pipeline.rollups]

    assert run() == run()


def test_obs_window_records_publish_on_the_bus():
    bus = TraceBus()
    seen = []
    bus.subscribe("obs.window", lambda record: seen.append(record))
    registry = MetricsRegistry()
    pipeline = TimeSeriesPipeline(registry, bus, window_us=WINDOW)
    registry.counter("A", "cpu", "x").inc(5)
    pipeline._advance(101.0)
    assert len(seen) == 1
    assert seen[0].data["index"] == 0
    assert seen[0].data["active_keys"] == 1
    # The obs.window record itself must not re-enter the pipeline
    # (re-entrancy guard), so exactly one window closed.
    assert pipeline.windows_closed == 1


def test_summary_line_mentions_the_essentials():
    bus, registry, pipeline = _pipeline()
    registry.counter("A", "cpu", "x").inc(5)
    pipeline._advance(101.0)
    line = pipeline.summary()
    assert "1 closed" in line
    assert "0 dropped by cap" in line
