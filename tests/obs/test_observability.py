"""End-to-end observability: wiring, reconciliation, determinism."""

import json

import pytest

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.obs import Observability, UNACCOUNTED
from repro.obs.export import chrome_trace, jsonl_lines, validate_chrome_trace
from repro.obs import observe as observe_mod
from tests.sched.test_trace_digest import _fresh_id_counters


def _run_workload(observe=True, seed=41, seconds=0.2):
    host = Host(mode=SystemMode.RC, seed=seed, observe=observe)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    EventDrivenServer(host.kernel, use_containers=True).install()
    for i in range(3):
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}",
            think_time_us=700.0, rng=host.sim.rng.fork(f"c{i}"),
        ).start(at_us=2_000.0 + i * 97.0)
    host.run(seconds=seconds)
    return host


def test_host_observe_flag_attaches_observability():
    host = _run_workload(observe=True)
    obs = host.observability
    assert isinstance(obs, Observability)
    assert obs.profiler.total_us > 0
    assert obs.tracer.completed_requests()
    assert len(obs.registry) > 0
    assert "observability:" in obs.summary()


def test_unobserved_host_has_inactive_bus():
    host = Host(mode=SystemMode.RC, seed=41)
    assert host.observability is None
    assert not host.sim.trace.active


def test_env_variable_attaches_observability(monkeypatch):
    monkeypatch.setenv(observe_mod.TRACE_ENV, "1")
    host = Host(mode=SystemMode.RC, seed=41)
    assert host.observability is not None
    # And it registered for CLI draining.
    assert host.observability in observe_mod.installed()
    observe_mod.drain_installed()
    assert observe_mod.installed() == []


def test_profiler_reconciles_with_container_ledgers():
    """Every microsecond the profiler attributes to a container must be
    exactly that container's CPU ledger, and the grand total must be
    the CPU accounting total -- telemetry and billing agree bit for
    bit because they fold the same charge stream."""
    host = _run_workload()
    profiler = host.observability.profiler

    def walk(container):
        yield container
        for child in container.children:
            yield from walk(child)

    by_name = {c.name: c for c in walk(host.kernel.containers.root)}
    totals = profiler.container_totals()
    charged = {n: v for n, v in totals.items() if n != UNACCOUNTED}
    assert charged
    for name, amount in charged.items():
        assert amount == pytest.approx(by_name[name].usage.cpu_us,
                                       rel=1e-12, abs=1e-9)
    accounting = host.kernel.cpu.accounting
    assert totals.get(UNACCOUNTED, 0.0) == pytest.approx(
        accounting.unaccounted_cpu_us, rel=1e-12, abs=1e-9
    )
    assert profiler.total_us == pytest.approx(
        accounting.total_cpu_us, rel=1e-12
    )


def test_registry_cpu_counters_match_profiler():
    host = _run_workload()
    obs = host.observability
    for name, amount in obs.profiler.container_totals().items():
        counter = obs.registry.get(name, "cpu", "charged_us")
        assert counter is not None
        assert counter.value == pytest.approx(amount, rel=1e-12)


def test_request_spans_cover_client_latencies():
    host = _run_workload()
    obs = host.observability
    completed = obs.tracer.completed_requests()
    assert completed
    for root in completed:
        # The root opens at the DATA packet's NIC arrival; the client's
        # latency clock starts earlier (connect + handshake), so the
        # span bounds the latency from below.
        assert 0.0 < root.duration_us() <= root.attrs["latency_us"]
        names = {c.name for c in obs.tracer.children_of(root)}
        assert {"net.protocol", "app", "net.response"} <= names
    # Latency histogram count equals completed request spans.
    total_observed = sum(
        m.count
        for (c, s, n), m in (
            ((k[0], k[1], k[2]), obs.registry.get(*k))
            for k in obs.registry.keys()
        )
        if s == "client" and n == "latency_us"
    )
    assert total_observed == len(completed)


def test_exports_are_byte_identical_across_runs(tmp_path):
    """The acceptance gate in miniature: the same (tree, params, seed)
    run twice in one process must export byte-identical artifacts."""

    def one_run(outdir):
        with _fresh_id_counters():
            host = _run_workload(seconds=0.1)
        paths = host.observability.export(outdir)
        return {p.name: p.read_bytes() for p in paths}

    first = one_run(tmp_path / "a")
    second = one_run(tmp_path / "b")
    assert first.keys() == second.keys()
    for name in first:
        assert first[name] == second[name], f"{name} differs between runs"
    # The exported chrome document also passes schema validation.
    document = json.loads(first["trace-events.json"])
    assert validate_chrome_trace(document) == []


def test_observing_does_not_change_results():
    """Observation must be pure: the seeded workload's client stats are
    identical with and without the whole obs stack attached."""

    def client_stats(observe):
        with _fresh_id_counters():
            host = _run_workload(observe=observe, seconds=0.1)
        accounting = host.kernel.cpu.accounting
        return (accounting.total_cpu_us, accounting.unaccounted_cpu_us,
                host.now)

    assert client_stats(False) == client_stats(True)


def _run_smp_workload(n_cpus=4, seed=47, seconds=0.2):
    from repro.apps.httpserver import MultiThreadedServer
    from repro.kernel.kernel import KernelConfig

    config = KernelConfig(mode=SystemMode.RC, n_cpus=n_cpus)
    host = Host(mode=SystemMode.RC, seed=seed, config=config, observe=True)
    host.kernel.fs.add_file("/index.html", 2048)
    host.kernel.fs.warm("/index.html")
    MultiThreadedServer(host.kernel, n_threads=8).install()
    for i in range(10):
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}",
            think_time_us=500.0, rng=host.sim.rng.fork(f"c{i}"),
        ).start(at_us=2_000.0 + i * 111.0)
    host.run(seconds=seconds)
    return host


def test_smp_chrome_trace_has_one_lane_per_core():
    host = _run_smp_workload()
    obs = host.observability
    document = chrome_trace(obs.profiler, obs.tracer)
    assert validate_chrome_trace(document) == []
    from repro.obs.export import CORES_PID

    events = document["traceEvents"]
    lane_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
        and e["pid"] == CORES_PID
    }
    assert lane_names == {f"core {i}" for i in range(4)}
    # Every core saw work, and the core lanes mirror the dispatcher's
    # per-core ledgers exactly.
    by_core = {}
    for event in events:
        if event["ph"] == "X" and event["pid"] == CORES_PID:
            by_core[event["tid"]] = by_core.get(event["tid"], 0.0) + event["dur"]
    assert set(by_core) == {0, 1, 2, 3}
    for core, busy in enumerate(host.kernel.cpu.core_busy_us):
        assert by_core[core] == pytest.approx(busy, rel=1e-12)


def test_smp_registry_core_counters_reconcile():
    host = _run_smp_workload()
    registry = host.observability.registry
    cpu = host.kernel.cpu
    for core, busy in enumerate(cpu.core_busy_us):
        counter = registry.get(f"core:{core}", "core", "busy_us")
        assert counter is not None
        assert counter.value == pytest.approx(busy, rel=1e-12)
        idle = registry.get(f"core:{core}", "core", "idle_us")
        # Busy plus booked idle never exceeds elapsed time (the tail
        # after the core's last slice stays unbooked).
        booked = counter.value + (idle.value if idle is not None else 0.0)
        assert booked <= host.now * (1 + 1e-9)
    steal_total = sum(
        registry.get(*key).value
        for key in registry.keys()
        if key[1] == "core" and key[2] == "steals"
    )
    assert steal_total == host.kernel.scheduler.steals > 0


def test_smp_exports_are_byte_identical_across_runs(tmp_path):
    def one_run(outdir):
        with _fresh_id_counters():
            host = _run_smp_workload(seconds=0.1)
        paths = host.observability.export(outdir)
        return {p.name: p.read_bytes() for p in paths}

    first = one_run(tmp_path / "a")
    second = one_run(tmp_path / "b")
    assert first.keys() == second.keys()
    for name in first:
        assert first[name] == second[name], f"{name} differs between runs"
