"""Export format correctness (JSONL, Chrome trace events, flamegraph)."""

import json

from repro.obs.export import (
    CORES_PID,
    REQUESTS_PID,
    chrome_trace,
    flamegraph_lines,
    jsonl_lines,
    validate_chrome_trace,
    write_exports,
)
from repro.obs.profile import SimProfiler
from repro.obs.spans import RequestTracer
from repro.sim.tracing import TraceBus


def _populated():
    """A profiler + tracer fed one request's worth of records."""
    bus = TraceBus()
    profiler = SimProfiler(bus)
    tracer = RequestTracer(bus)
    bus.publish(10.0, "cpu.slice", amount_us=4.0, charge="httpd",
                kind="entity", network=False, phase="Compute",
                entity="t1")
    bus.publish(20.0, "cpu.slice", amount_us=2.0, charge=None,
                kind="soft", network=True, phase="rx", entity="softirq")
    bus.publish(100.0, "net.arrival", seq=1, kind="data", req=1,
                client="c")
    bus.publish(101.0, "net.enqueue", seq=1, container="httpd",
                dropped=False)
    bus.publish(105.0, "net.proto", seq=1, kind="data")
    bus.publish(106.0, "app.request", event="start", req=1,
                container="httpd", server="httpd")
    bus.publish(120.0, "app.request", event="end", req=1,
                container="httpd", server="httpd")
    bus.publish(121.0, "net.tx", req=1, container="httpd", bytes=1024)
    bus.publish(140.0, "client.complete", req=1, client="c",
                latency_us=40.0)
    return profiler, tracer


def test_jsonl_lines_are_parseable_and_ordered():
    profiler, tracer = _populated()
    lines = jsonl_lines(profiler, tracer)
    parsed = [json.loads(line) for line in lines]
    kinds = [p["type"] for p in parsed]
    # All slices first (publish order), then all spans (id order).
    assert kinds == ["slice"] * 2 + ["span"] * len(tracer.spans)
    span_ids = [p["span_id"] for p in parsed if p["type"] == "span"]
    assert span_ids == sorted(span_ids)


def test_chrome_trace_is_schema_valid():
    profiler, tracer = _populated()
    document = chrome_trace(profiler, tracer)
    assert validate_chrome_trace(document) == []
    # Survives canonical JSON round-trip.
    assert validate_chrome_trace(json.loads(json.dumps(document))) == []


def test_chrome_trace_structure():
    profiler, tracer = _populated()
    events = chrome_trace(profiler, tracer)["traceEvents"]
    by_ph = {}
    for event in events:
        by_ph.setdefault(event["ph"], []).append(event)
    # Every container got a named process, plus the requests pseudo-pid.
    process_names = {
        e["args"]["name"] for e in by_ph["M"]
        if e["name"] == "process_name"
    }
    assert {"httpd", "<unaccounted>", "requests", "cores"} <= process_names
    # One X event per kept slice in the container lanes, carrying dur,
    # plus a duplicate per CPU slice in the per-core machine lanes.
    container_lane = [e for e in by_ph["X"] if e["pid"] != CORES_PID]
    core_lane = [e for e in by_ph["X"] if e["pid"] == CORES_PID]
    assert len(container_lane) == 2
    assert len(core_lane) == 2
    assert all("dur" in e for e in by_ph["X"])
    # Uniprocessor feed: everything lands in the core-0 lane.
    assert {e["tid"] for e in core_lane} == {0}
    assert all(e["args"]["container"] for e in core_lane)
    # Async begin/end events pair up and live under the requests pid.
    assert len(by_ph["b"]) == len(by_ph["e"])
    assert all(e["pid"] == REQUESTS_PID for e in by_ph["b"])
    # Children group under the root span's async id.
    root = tracer.completed_requests()[0]
    child_groups = {
        e["id"] for e in by_ph["b"] if e["name"] != "request"
    }
    assert child_groups == {root.span_id}


def test_validate_chrome_trace_reports_problems():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    missing_key = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1}]}
    problems = validate_chrome_trace(missing_key)
    assert any("missing 'name'" in p for p in problems)
    assert any("no dur" in p for p in problems)


def test_flamegraph_lines_format():
    profiler, tracer = _populated()
    lines = flamegraph_lines(profiler)
    assert lines == sorted(lines)
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3
        assert int(weight) > 0  # integer nanoseconds, zeros skipped
    assert "httpd;app;Compute 4000" in lines


def test_flamegraph_sanitizes_separator_and_skips_zero():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    bus.publish(1.0, "cpu.slice", amount_us=1.0, charge="a;b",
                kind="entity", network=False, phase="x;y", entity="t")
    bus.publish(2.0, "cpu.slice", amount_us=0.0, charge="zero",
                kind="entity", network=False, phase="none", entity="t")
    lines = flamegraph_lines(profiler)
    assert lines == ["a_b;app;x_y 1000"]


def test_write_exports_creates_all_files(tmp_path):
    profiler, tracer = _populated()
    paths = write_exports(profiler, tracer, tmp_path,
                          metrics_snapshot=[{"kind": "counter"}])
    names = [p.name for p in paths]
    assert names == [
        "trace.jsonl", "trace-events.json", "flame.txt", "metrics.json"
    ]
    for path in paths:
        assert path.exists()
    document = json.loads((tmp_path / "trace-events.json").read_text())
    assert validate_chrome_trace(document) == []
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics == [{"kind": "counter"}]
