"""Export format correctness (JSONL, Chrome trace events, flamegraph)."""

import json

import pytest

from repro.obs.export import (
    CORES_PID,
    REQUESTS_PID,
    chrome_trace,
    flamegraph_lines,
    jsonl_lines,
    validate_chrome_trace,
    write_exports,
)
from repro.obs.profile import SimProfiler
from repro.obs.spans import RequestTracer
from repro.sim.tracing import TraceBus


def _populated():
    """A profiler + tracer fed one request's worth of records."""
    bus = TraceBus()
    profiler = SimProfiler(bus)
    tracer = RequestTracer(bus)
    bus.publish(10.0, "cpu.slice", amount_us=4.0, charge="httpd",
                kind="entity", network=False, phase="Compute",
                entity="t1")
    bus.publish(20.0, "cpu.slice", amount_us=2.0, charge=None,
                kind="soft", network=True, phase="rx", entity="softirq")
    bus.publish(100.0, "net.arrival", seq=1, kind="data", req=1,
                client="c")
    bus.publish(101.0, "net.enqueue", seq=1, container="httpd",
                dropped=False)
    bus.publish(105.0, "net.proto", seq=1, kind="data")
    bus.publish(106.0, "app.request", event="start", req=1,
                container="httpd", server="httpd")
    bus.publish(120.0, "app.request", event="end", req=1,
                container="httpd", server="httpd")
    bus.publish(121.0, "net.tx", req=1, container="httpd", bytes=1024)
    bus.publish(140.0, "client.complete", req=1, client="c",
                latency_us=40.0)
    return profiler, tracer


def test_jsonl_lines_are_parseable_and_ordered():
    profiler, tracer = _populated()
    lines = jsonl_lines(profiler, tracer)
    parsed = [json.loads(line) for line in lines]
    kinds = [p["type"] for p in parsed]
    # All slices first (publish order), then all spans (id order).
    assert kinds == ["slice"] * 2 + ["span"] * len(tracer.spans)
    span_ids = [p["span_id"] for p in parsed if p["type"] == "span"]
    assert span_ids == sorted(span_ids)


def test_chrome_trace_is_schema_valid():
    profiler, tracer = _populated()
    document = chrome_trace(profiler, tracer)
    assert validate_chrome_trace(document) == []
    # Survives canonical JSON round-trip.
    assert validate_chrome_trace(json.loads(json.dumps(document))) == []


def test_chrome_trace_structure():
    profiler, tracer = _populated()
    events = chrome_trace(profiler, tracer)["traceEvents"]
    by_ph = {}
    for event in events:
        by_ph.setdefault(event["ph"], []).append(event)
    # Every container got a named process, plus the requests pseudo-pid.
    process_names = {
        e["args"]["name"] for e in by_ph["M"]
        if e["name"] == "process_name"
    }
    assert {"httpd", "<unaccounted>", "requests", "cores"} <= process_names
    # One X event per kept slice in the container lanes, carrying dur,
    # plus a duplicate per CPU slice in the per-core machine lanes.
    container_lane = [e for e in by_ph["X"] if e["pid"] != CORES_PID]
    core_lane = [e for e in by_ph["X"] if e["pid"] == CORES_PID]
    assert len(container_lane) == 2
    assert len(core_lane) == 2
    assert all("dur" in e for e in by_ph["X"])
    # Uniprocessor feed: everything lands in the core-0 lane.
    assert {e["tid"] for e in core_lane} == {0}
    assert all(e["args"]["container"] for e in core_lane)
    # Async begin/end events pair up and live under the requests pid.
    assert len(by_ph["b"]) == len(by_ph["e"])
    assert all(e["pid"] == REQUESTS_PID for e in by_ph["b"])
    # Children group under the root span's async id.
    root = tracer.completed_requests()[0]
    child_groups = {
        e["id"] for e in by_ph["b"] if e["name"] != "request"
    }
    assert child_groups == {root.span_id}


def test_validate_chrome_trace_reports_problems():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    missing_key = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1}]}
    problems = validate_chrome_trace(missing_key)
    assert any("missing 'name'" in p for p in problems)
    assert any("no dur" in p for p in problems)


def test_flamegraph_lines_format():
    profiler, tracer = _populated()
    lines = flamegraph_lines(profiler)
    assert lines == sorted(lines)
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3
        assert int(weight) > 0  # integer nanoseconds, zeros skipped
    assert "httpd;app;Compute 4000" in lines


def test_flamegraph_sanitizes_separator_and_skips_zero():
    bus = TraceBus()
    profiler = SimProfiler(bus)
    bus.publish(1.0, "cpu.slice", amount_us=1.0, charge="a;b",
                kind="entity", network=False, phase="x;y", entity="t")
    bus.publish(2.0, "cpu.slice", amount_us=0.0, charge="zero",
                kind="entity", network=False, phase="none", entity="t")
    lines = flamegraph_lines(profiler)
    assert lines == ["a_b;app;x_y 1000"]


def _alert(seq=0, time_us=100.0, severity="page"):
    from repro.obs.slo import Alert

    return Alert(
        seq=seq, time_us=time_us, rule="syn-drop-burn", kind="burn_rate",
        severity=severity, container="*", value=6.0, threshold=2.0,
        window_us=500.0, message="burning",
    )


def _rollup(index=0):
    from repro.obs.timeseries import WindowRollup

    rollup = WindowRollup(index, index * 100.0, (index + 1) * 100.0)
    rollup.deltas = {
        ("httpd", "net", "syns"): 40.0,
        ("httpd", "cpu", "charged_us"): 90.0,
        ("other", "cpu", "charged_us"): 10.0,
    }
    return rollup


def test_chrome_trace_alert_instants():
    profiler, tracer = _populated()
    document = chrome_trace(profiler, tracer, alerts=[_alert()])
    assert validate_chrome_trace(document) == []
    instants = [
        e for e in document["traceEvents"] if e["ph"] == "i"
    ]
    assert len(instants) == 1
    event = instants[0]
    assert event["name"] == "page:syn-drop-burn"
    assert event["s"] == "g"  # global scope: visible across all lanes
    assert event["pid"] == CORES_PID
    assert event["ts"] == 100.0
    assert event["args"]["rule"] == "syn-drop-burn"


def test_chrome_trace_rollup_counters_bound_cardinality():
    profiler, tracer = _populated()
    document = chrome_trace(profiler, tracer, rollups=[_rollup()])
    assert validate_chrome_trace(document) == []
    counters = [
        e for e in document["traceEvents"] if e["ph"] == "C"
    ]
    # One series per (subsystem, metric), summed across containers --
    # two containers' cpu/charged_us collapse into one lane.
    assert {e["name"] for e in counters} == {
        "net/syns", "cpu/charged_us",
    }
    charged = next(e for e in counters if e["name"] == "cpu/charged_us")
    assert charged["args"]["rate"] == pytest.approx((90.0 + 10.0) * 1e4)
    assert charged["ts"] == 100.0


def test_chrome_trace_cores_process_appears_for_alerts_alone():
    """Alerts need a host process even when no CPU slices exist."""
    bus = TraceBus()
    profiler = SimProfiler(bus)
    tracer = RequestTracer(bus)
    document = chrome_trace(profiler, tracer, alerts=[_alert()])
    names = {
        e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "cores" in names


def test_write_exports_creates_all_files(tmp_path):
    profiler, tracer = _populated()
    paths = write_exports(profiler, tracer, tmp_path,
                          metrics_snapshot=[{"kind": "counter"}])
    names = [p.name for p in paths]
    assert names == [
        "trace.jsonl", "trace-events.json", "flame.txt", "metrics.json"
    ]
    for path in paths:
        assert path.exists()
    document = json.loads((tmp_path / "trace-events.json").read_text())
    assert validate_chrome_trace(document) == []
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics == [{"kind": "counter"}]
