"""Fabric link model: latency, serialization, queueing, egress hook."""

import pytest

from repro.cluster import Cluster, Fabric
from repro.net.packet import PacketKind, alloc_packet, ip_addr
from repro.sim.engine import Simulation


def test_delay_is_latency_plus_serialization():
    sim = Simulation(seed=1)
    fabric = Fabric(sim, latency_us=40.0, bytes_per_us=100.0)
    # 500 bytes at 100 B/us = 5 us on the wire, plus 40 us propagation.
    assert fabric.delay_us("a", "b", 500) == pytest.approx(45.0)


def test_back_to_back_sends_queue_on_one_link():
    sim = Simulation(seed=1)
    fabric = Fabric(sim, latency_us=10.0, bytes_per_us=1.0)
    # First segment: 100 us serialization + 10 us latency.
    assert fabric.delay_us("a", "b", 100) == pytest.approx(110.0)
    # Second, sent at the same instant, waits for the transmitter:
    # 100 us queueing + 50 us serialization + 10 us latency.
    assert fabric.delay_us("a", "b", 50) == pytest.approx(160.0)
    # The reverse direction is a different link: no queueing.
    assert fabric.delay_us("b", "a", 50) == pytest.approx(60.0)


def test_transmitter_frees_up_as_time_passes():
    sim = Simulation(seed=1)
    fabric = Fabric(sim, latency_us=10.0, bytes_per_us=1.0)
    fabric.delay_us("a", "b", 100)
    sim.after(200.0, lambda: None)
    sim.run(until=200.0)
    # The backlog drained at t=100; a fresh send pays no queueing.
    assert fabric.delay_us("a", "b", 50) == pytest.approx(60.0)


def test_per_link_configuration_overrides_defaults():
    sim = Simulation(seed=1)
    fabric = Fabric(sim, latency_us=50.0, bytes_per_us=125.0)
    fabric.link("a", "b", latency_us=5.0, bytes_per_us=1000.0)
    assert fabric.delay_us("a", "b", 1000) == pytest.approx(6.0)
    # Unconfigured pairs use the fabric-wide defaults.
    assert fabric.delay_us("a", "c", 1000) == pytest.approx(58.0)


def test_link_stats_accumulate():
    sim = Simulation(seed=1)
    fabric = Fabric(sim, latency_us=10.0, bytes_per_us=100.0)
    fabric.delay_us("a", "b", 300)
    fabric.delay_us("a", "b", 200)
    link = fabric.link("a", "b")
    assert link.packets_sent == 2
    assert link.bytes_sent == 500


def test_invalid_link_parameters_raise():
    sim = Simulation(seed=1)
    with pytest.raises(ValueError):
        Fabric(sim, latency_us=-1.0).link("a", "b")
    with pytest.raises(ValueError):
        Fabric(sim, bytes_per_us=0.0).link("a", "b")


def test_duplicate_host_name_rejected():
    cluster = Cluster(seed=1)
    cluster.add_host("a")
    with pytest.raises(ValueError):
        cluster.fabric.attach("a", cluster.kernel("a"))


def test_send_delivers_to_destination_kernel():
    cluster = Cluster(seed=1, latency_us=30.0, bytes_per_us=64.0)
    cluster.add_host("a")
    cluster.add_host("b")
    seen = []
    cluster.kernel("b").net_input = lambda packet: seen.append(
        (cluster.now, packet.kind)
    )
    packet = alloc_packet(PacketKind.SYN, ip_addr(10, 0, 0, 1))
    cluster.fabric.send("a", "b", packet)
    cluster.run(until_us=1_000.0)
    assert seen == [(30.0 + 64 / 64.0, PacketKind.SYN)]


def test_egress_delay_distinguishes_fabric_endpoints():
    cluster = Cluster(seed=1, latency_us=25.0, bytes_per_us=100.0)
    cluster.add_host("a")
    cluster.add_host("b")

    class External:
        pass

    class OnFabric:
        fabric_host = "b"

    wire = cluster.kernel("a").stack.wire_delay_us
    assert cluster.fabric.egress_delay("a", External(), 200) == wire
    assert cluster.fabric.egress_delay("a", OnFabric(), 200) == pytest.approx(
        27.0
    )


def test_cluster_run_contract():
    cluster = Cluster(seed=1)
    with pytest.raises(ValueError):
        cluster.run()
    with pytest.raises(ValueError):
        cluster.run(seconds=1.0, until_us=5.0)
    cluster.run(until_us=500.0)
    assert cluster.now == 500.0
