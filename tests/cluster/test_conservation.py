"""Cross-host conservation: Σ member ledgers == cluster ledger.

The checker recomputes every global container's totals from the
members' live cumulative counters and compares them against the
incrementally-built cluster ledger.  A clean cluster run must produce
zero violations; a tampered ledger (the classic "lost delta" bug the
incremental path could hide) must be caught at the next window.
"""

import pytest

from repro.analysis import sanitizer
from repro.analysis.cluster_conservation import ClusterConservationChecker
from repro.apps.httpserver import MultiThreadedServer
from repro.apps.webclient import HttpClient
from repro.cluster import (
    Cluster,
    ClusterPrincipals,
    LoadBalancer,
    backend_specs,
    tenant_specs,
)
from repro.kernel.kernel import SystemMode
from repro.net.packet import ip_addr

TENANTS = ["gold", "bronze"]


def busy_cluster(seed=11, sanitize=True):
    cluster = Cluster(mode=SystemMode.RC, seed=seed, sanitize=sanitize)
    cluster.add_host("lb", n_cpus=2, irq_core=1)
    names = ["be-00", "be-01"]
    for name in names:
        cluster.add_host(name)
        kernel = cluster.kernel(name)
        kernel.fs.add_file("/index.html", 1024)
        kernel.fs.warm("/index.html")
        MultiThreadedServer(
            kernel, specs=backend_specs(TENANTS), n_threads=4,
            use_containers=True,
        ).install()
    principals = ClusterPrincipals(cluster, window_us=10_000.0)
    by_tenant = {}
    for tenant in TENANTS:
        principal = principals.create(tenant)
        principal.add_member("lb", f"lb:class:{tenant}")
        for name in names:
            principal.add_member(name, f"mt-httpd:class:{tenant}")
        by_tenant[tenant] = principal
    LoadBalancer(
        cluster, "lb", names,
        specs=tenant_specs(TENANTS),
        principals=by_tenant,
        use_containers=True,
    ).install()
    for index, tenant in enumerate(TENANTS):
        subnet = 1 if tenant == "gold" else 2
        for i in range(2):
            HttpClient(
                cluster.kernel("lb"),
                ip_addr(10, subnet, 0, 10 + i),
                f"{tenant}-{i}",
                think_time_us=400.0,
                rng=cluster.sim.rng.fork(f"{tenant}-{i}"),
            ).start(at_us=2_000.0 + (index * 2 + i) * 103.0)
    return cluster, principals


def drain_checkers():
    """Pop anything this module's clusters registered process-wide."""
    return sanitizer.drain_installed()


def test_clean_run_has_no_violations():
    cluster, principals = busy_cluster()
    try:
        assert isinstance(principals.checker, ClusterConservationChecker)
        cluster.run(seconds=0.3)
        violations = principals.checker.finish()
        assert violations == []
        assert principals.checker.windows_checked > principals.windows_rolled
        assert "OK" in principals.checker.summary()
    finally:
        drain_checkers()


def test_sanitize_env_optin(monkeypatch):
    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "1")
    cluster = Cluster(mode=SystemMode.RC, seed=12)
    try:
        principals = ClusterPrincipals(cluster)
        assert principals.checker is not None
    finally:
        drain_checkers()


def test_off_by_default():
    cluster = Cluster(mode=SystemMode.RC, seed=12)
    principals = ClusterPrincipals(cluster)
    assert principals.checker is None
    assert drain_checkers() == []


def test_tampered_ledger_detected():
    cluster, principals = busy_cluster(seed=13)
    try:
        cluster.run(seconds=0.15)
        gold = principals.principals[0]
        assert gold.ledger.cpu_us > 0
        # Lose a delta: the next reconcile must flag the mismatch.
        gold.ledger.cpu_us -= 25.0
        cluster.run(seconds=0.05)
        violations = principals.checker.violations
        assert any(
            v.check == "cluster-ledger-conservation" for v in violations
        )
        assert "violation" in principals.checker.summary()
    finally:
        drain_checkers()


def test_tampered_window_usage_detected():
    cluster, principals = busy_cluster(seed=14)
    try:
        cluster.run(seconds=0.15)
        gold = principals.principals[0]
        original_roll = gold.roll

        def lying_roll(kernels):
            original_roll(kernels)
            gold.window_cpu_us += 77.0  # throttle decision sees a lie

        gold.roll = lying_roll
        cluster.run(seconds=0.05)
        assert any(
            v.check == "cluster-window-delta"
            for v in principals.checker.violations
        )
    finally:
        drain_checkers()


def test_shrinking_ledger_detected():
    cluster, principals = busy_cluster(seed=15)
    try:
        cluster.run(seconds=0.15)
        bronze = principals.principals[1]
        checker = principals.checker
        before = len(checker.violations)
        # Rewind the ledger far enough that the conservation tolerance
        # cannot mask it: both the Σ-members check and the monotone
        # check must fire.
        bronze.ledger.cpu_us = 0.0
        bronze.ledger.cpu_network_us = 0.0
        cluster.run(seconds=0.05)
        checks = {v.check for v in checker.violations[before:]}
        assert "cluster-ledger-monotone" in checks
    finally:
        drain_checkers()


def test_unknown_member_host_detected():
    cluster, principals = busy_cluster(seed=16)
    try:
        gold = principals.principals[0]
        gold.add_member("no-such-host", "x")
        # The aggregator requires valid hosts: the first window roll
        # fails fast rather than silently skipping the member.
        with pytest.raises(KeyError):
            cluster.run(seconds=0.02)
        # The checker's independent sweep reports it as a violation
        # instead of crashing (it audits, it doesn't aggregate).
        principals.checker.on_window(principals)
        assert any(
            v.check == "cluster-member-host"
            for v in principals.checker.violations
        )
    finally:
        drain_checkers()
