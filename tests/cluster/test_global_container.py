"""GlobalContainer window aggregation, caps, and throttling."""

import pytest

from repro.cluster import Cluster, ClusterPrincipals, GlobalContainer
from repro.core.attributes import timeshare_attrs
from repro.kernel.kernel import SystemMode


def two_host_cluster(seed=7):
    cluster = Cluster(mode=SystemMode.RC, seed=seed)
    cluster.add_host("a")
    cluster.add_host("b")
    return cluster


def member(cluster, host, name):
    return cluster.kernel(host).containers.create(
        name, attrs=timeshare_attrs()
    )


def test_limit_validation():
    with pytest.raises(ValueError):
        GlobalContainer("t", global_cpu_limit=0.0)
    with pytest.raises(ValueError):
        GlobalContainer("t", global_cpu_limit=1.5)
    GlobalContainer("t", global_cpu_limit=1.0)  # boundary is legal


def test_roll_aggregates_member_deltas():
    cluster = two_host_cluster()
    on_a = member(cluster, "a", "tenant")
    on_b = member(cluster, "b", "tenant")
    principal = GlobalContainer("tenant")
    principal.add_member("a", "tenant")
    principal.add_member("b", "tenant")
    kernels = cluster.fabric.kernels

    on_a.charge_cpu(100.0)
    on_b.charge_cpu(40.0, network=True)
    principal.roll(kernels)
    assert principal.ledger.cpu_us == pytest.approx(140.0)
    assert principal.ledger.cpu_network_us == pytest.approx(40.0)
    assert principal.window_cpu_us == pytest.approx(140.0)

    # Second window: only the delta is folded in.
    on_a.charge_cpu(10.0)
    principal.roll(kernels)
    assert principal.ledger.cpu_us == pytest.approx(150.0)
    assert principal.window_cpu_us == pytest.approx(10.0)

    # Quiet window: ledger unchanged, window usage zero.
    principal.roll(kernels)
    assert principal.ledger.cpu_us == pytest.approx(150.0)
    assert principal.window_cpu_us == 0.0


def test_vanished_member_moves_snapshot_to_carryover():
    cluster = two_host_cluster()
    on_a = member(cluster, "a", "tenant")
    principal = GlobalContainer("tenant")
    principal.add_member("a", "tenant")
    kernels = cluster.fabric.kernels

    on_a.charge_cpu(75.0)
    principal.roll(kernels)
    assert principal.ledger.cpu_us == pytest.approx(75.0)

    cluster.kernel("a").containers.release(on_a)
    assert not on_a.alive
    principal.roll(kernels)
    # The ledger keeps the destroyed member's contribution, and the
    # carryover records it so Σ(live members) + carryover == ledger.
    assert principal.ledger.cpu_us == pytest.approx(75.0)
    assert principal.carryover.cpu_us == pytest.approx(75.0)


def test_push_caps_mirrors_global_limit_onto_members():
    cluster = two_host_cluster()
    on_a = member(cluster, "a", "tenant")
    on_b = member(cluster, "b", "tenant")
    principal = GlobalContainer("tenant", global_cpu_limit=0.3)
    principal.add_member("a", "tenant")
    principal.add_member("b", "tenant")
    assert on_a.attrs.cpu_limit is None
    principal.push_caps(cluster.fabric.kernels)
    assert on_a.attrs.cpu_limit == pytest.approx(0.3)
    assert on_b.attrs.cpu_limit == pytest.approx(0.3)


def test_principals_tick_sets_throttled_and_traces():
    cluster = two_host_cluster()
    records = cluster.sim.trace.record(["cluster.window"])
    principals = ClusterPrincipals(cluster, window_us=1_000.0)
    hog = principals.create("hog", global_cpu_limit=0.10)
    hog.add_member("a", "tenant")
    on_a = member(cluster, "a", "tenant")

    # Two cores total (one per host): window capacity is 2000 us, the
    # cap 200 us.  Charge 500 us in the first window, nothing after.
    on_a.charge_cpu(500.0)
    cluster.run(until_us=1_500.0)
    assert hog.throttled
    assert hog.windows_throttled == 1
    cluster.run(until_us=2_500.0)
    assert not hog.throttled  # quiet window clears the gate
    assert principals.windows_rolled >= 2
    tenants = [record.data["tenant"] for record in records]
    assert tenants.count("hog") == principals.windows_rolled
    assert any(record.data["throttled"] for record in records)


def test_principals_window_validation():
    cluster = two_host_cluster()
    with pytest.raises(ValueError):
        ClusterPrincipals(cluster, window_us=0.0)
