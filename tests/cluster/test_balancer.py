"""Load balancer: routing policies, forwarding, admission control."""

import pytest

from repro.apps.httpserver import MultiThreadedServer
from repro.apps.webclient import HttpClient
from repro.cluster import (
    Cluster,
    ClusterPrincipals,
    LeastLoadedPolicy,
    LoadBalancer,
    RoundRobinPolicy,
    UsageWeightedPolicy,
    backend_specs,
    tenant_specs,
)
from repro.core.attributes import timeshare_attrs
from repro.kernel.kernel import SystemMode
from repro.net.packet import ip_addr

TENANTS = ["gold", "bronze"]


def make_cluster(n_backends=2, policy=None, principals_by_tenant=None,
                 use_containers=True, seed=3):
    mode = SystemMode.RC if use_containers else SystemMode.UNMODIFIED
    cluster = Cluster(mode=mode, seed=seed)
    cluster.add_host("lb", n_cpus=2, irq_core=1)
    names = [f"be-{index:02d}" for index in range(n_backends)]
    servers = []
    for name in names:
        cluster.add_host(name)
        kernel = cluster.kernel(name)
        kernel.fs.add_file("/index.html", 1024)
        kernel.fs.warm("/index.html")
        server = MultiThreadedServer(
            kernel, specs=backend_specs(TENANTS), n_threads=4,
            use_containers=use_containers,
        )
        server.install()
        servers.append(server)
    balancer = LoadBalancer(
        cluster, "lb", names,
        specs=tenant_specs(TENANTS),
        policy=policy if policy is not None else RoundRobinPolicy(),
        principals=principals_by_tenant,
        use_containers=use_containers,
    )
    balancer.install()
    return cluster, balancer, servers


def start_client(cluster, tenant, index, **kwargs):
    subnet = 1 if tenant == "gold" else 2
    client = HttpClient(
        cluster.kernel("lb"),
        ip_addr(10, subnet, 0, 10 + index),
        f"{tenant}-{index}",
        think_time_us=500.0,
        rng=cluster.sim.rng.fork(f"{tenant}-{index}"),
        **kwargs,
    )
    client.start(at_us=2_000.0 + index * 101.0)
    return client


def test_round_robin_rotates_per_tenant():
    policy = RoundRobinPolicy()
    backends = ["a", "b", "c"]
    picks = [policy.choose(None, "gold", backends) for _ in range(4)]
    assert picks == ["a", "b", "c", "a"]
    # A second tenant rotates independently.
    assert policy.choose(None, "bronze", backends) == "a"
    assert picks[-1] == "a"


def test_least_loaded_picks_minimum_inflight():
    class Stub:
        inflight = {"a": 3, "b": 1, "c": 2}

    assert LeastLoadedPolicy().choose(Stub(), "gold", ["a", "b", "c"]) == "b"
    # Ties break to list order.
    Stub.inflight = {"a": 1, "b": 1}
    assert LeastLoadedPolicy().choose(Stub(), "gold", ["a", "b"]) == "a"


def test_usage_weighted_follows_member_window_usage():
    cluster, balancer, _servers = make_cluster(
        n_backends=2, policy=UsageWeightedPolicy("mt-httpd")
    )
    cluster.run(until_us=1_000.0)  # let servers create class containers
    busy = cluster.kernel("be-00").containers.find_by_name(
        "mt-httpd:class:gold"
    )
    assert busy is not None
    busy.charge_cpu(5_000.0)
    policy = balancer.policy
    assert policy.choose(balancer, "gold", balancer.backends) == "be-01"
    idle = cluster.kernel("be-01").containers.find_by_name(
        "mt-httpd:class:gold"
    )
    idle.charge_cpu(9_000.0)
    assert policy.choose(balancer, "gold", balancer.backends) == "be-00"


def test_end_to_end_forward_and_splice():
    cluster, balancer, servers = make_cluster(n_backends=2)
    clients = [start_client(cluster, "gold", i) for i in range(3)]
    clients += [start_client(cluster, "bronze", i) for i in range(2)]
    cluster.run(seconds=0.3)
    assert balancer.stats_forwarded > 0
    assert balancer.stats_spliced > 0
    # Every client made progress through the cluster.
    for client in clients:
        assert client.stats_completed > 0
    # Requests were classified per tenant at the balancer...
    assert set(balancer.forwarded_by_tenant) == {"gold", "bronze"}
    # ...and ended on per-tenant class containers on the backends.
    for name in ("be-00", "be-01"):
        served = cluster.kernel(name).containers.find_by_name(
            "mt-httpd:class:gold"
        )
        assert served is not None and served.usage.cpu_us > 0


def test_round_robin_spreads_load_across_backends():
    cluster, balancer, servers = make_cluster(n_backends=3)
    for index in range(3):
        start_client(cluster, "gold", index)
    cluster.run(seconds=0.2)
    accepted = [server.stats.connections_accepted for server in servers]
    assert all(count > 0 for count in accepted)


def test_throttled_principal_sheds_at_admission():
    cluster = Cluster(mode=SystemMode.RC, seed=5)
    cluster.add_host("lb", n_cpus=2, irq_core=1)
    cluster.add_host("be-00")
    kernel = cluster.kernel("be-00")
    kernel.fs.add_file("/index.html", 1024)
    MultiThreadedServer(
        kernel, specs=backend_specs(TENANTS), n_threads=2,
        use_containers=True,
    ).install()
    # A principal with an absurdly small cap over a pre-charged member:
    # the very first window roll throttles it.
    principals = ClusterPrincipals(cluster, window_us=5_000.0)
    bronze = principals.create("bronze", global_cpu_limit=0.001)
    bronze.add_member("be-00", "pinned:bronze")
    pinned = kernel.containers.create(
        "pinned:bronze", attrs=timeshare_attrs()
    )
    balancer = LoadBalancer(
        cluster, "lb", ["be-00"],
        specs=tenant_specs(TENANTS),
        principals={"bronze": bronze},
        use_containers=True,
    )
    balancer.install()

    def burn():
        pinned.charge_cpu(1_000.0)
        cluster.sim.after(1_000.0, burn)

    cluster.sim.after(1_000.0, burn)
    client = start_client(cluster, "bronze", 0, timeout_us=100_000.0)
    cluster.run(seconds=0.4)
    assert bronze.windows_throttled > 0
    assert balancer.stats_rejected > 0
    assert balancer.rejected_by_tenant.get("bronze", 0) > 0
    # At most the request in flight before the first window roll got
    # through; everything after the throttle engaged was shed.
    assert client.stats_completed <= 1


def test_unbound_cluster_works_without_containers():
    cluster, balancer, _servers = make_cluster(
        n_backends=2, use_containers=False
    )
    client = start_client(cluster, "gold", 0)
    cluster.run(seconds=0.2)
    assert balancer.stats_spliced > 0
    assert client.stats_completed > 0


def test_balancer_requires_backends():
    cluster = Cluster(seed=1)
    cluster.add_host("lb")
    with pytest.raises(ValueError):
        LoadBalancer(cluster, "lb", [], specs=tenant_specs(TENANTS))
