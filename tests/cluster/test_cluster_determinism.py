"""Byte-identical cluster runs: per seed and across queue engines.

An 8-host cluster (balancer + 8 backends, two tenants, aggressors and
a SYN flood in play) is hashed over every ``cpu.slice`` record on every
host plus the balancer's forward/splice decisions.  Two invocations of
the same seed must agree bit-for-bit, the heap and wheel event queues
must agree with each other, and a different seed must disagree (the
digest actually covers the schedule).
"""

import contextlib
import hashlib
import itertools

from repro.experiments.fig_cluster_isolation import (
    _start_clients,
    build_cluster,
)


@contextlib.contextmanager
def _fresh_id_counters():
    """Reset the module-level id streams feeding names in the digest.

    Same pattern as ``tests/sched/test_trace_digest.py``: container,
    packet, connection, request, process ids are drawn from global
    ``itertools.count`` streams, so the digest would otherwise depend
    on how many objects earlier tests created in this process.
    """
    from repro.apps import mailserver as mail_mod
    from repro.apps import webclient as webclient_mod
    from repro.apps.httpserver import cgi as cgi_mod
    from repro.core import container as container_mod
    from repro.kernel import events as kevents_mod
    from repro.kernel import process as process_mod
    from repro.net import packet as packet_mod
    from repro.net import tcp as tcp_mod

    saved = [
        (container_mod, "_container_ids"),
        (process_mod, "_pids"),
        (process_mod, "_tids"),
        (packet_mod, "_packet_seq"),
        (tcp_mod, "_conn_ids"),
        (kevents_mod, "_event_seq"),
        (cgi_mod, "_cgi_ids"),
        (webclient_mod, "_request_ids"),
        (mail_mod, "_message_ids"),
    ]
    originals = [(mod, attr, getattr(mod, attr)) for mod, attr in saved]
    for mod, attr in saved:
        setattr(mod, attr, itertools.count(1))
    try:
        yield
    finally:
        for mod, attr, counter in originals:
            setattr(mod, attr, counter)


def cluster_digest(seed: int = 31, n_backends: int = 8,
                   queue: "str | None" = None) -> str:
    """Digest of a seeded 8-host cluster run's full trace."""
    with _fresh_id_counters():
        cluster, _balancer, _principals = build_cluster(
            "bound", n_backends, seed=seed, queue=queue
        )
        records = cluster.sim.trace.record(
            ["cpu.slice", "lb.forward", "lb.splice", "cluster.window"]
        )
        latencies_us: list = []
        _start_clients(cluster, n_backends, True, latencies_us)
        cluster.run(seconds=0.15)
    digest = hashlib.sha256()
    for record in records:
        data = record.data
        line = (
            f"{record.time:.6f}|{record.category}"
            f"|{data.get('host')}|{data.get('kind')}"
            f"|{data.get('amount_us')}|{data.get('charge')}"
            f"|{data.get('entity')}|{data.get('req')}"
            f"|{data.get('tenant')}|{data.get('backend')}"
            f"|{data.get('cpu_us')}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()


def test_same_seed_same_digest():
    assert cluster_digest(seed=31) == cluster_digest(seed=31)


def test_heap_and_wheel_engines_agree():
    assert cluster_digest(seed=31, queue="heap") == cluster_digest(
        seed=31, queue="wheel"
    )


def test_different_seed_different_digest():
    assert cluster_digest(seed=31) != cluster_digest(seed=32)
