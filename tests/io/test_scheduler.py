"""I/O scheduling disciplines: FIFO order and weighted fairness."""

import pytest

from repro.core.attributes import timeshare_attrs
from repro.core.operations import ContainerManager
from repro.io import (
    DiskDevice,
    FifoIOScheduler,
    WeightedFairIOScheduler,
    make_io_scheduler,
)
from repro.io.device import DiskRequest
from repro.kernel.costs import DEFAULT_COSTS
from repro.sim.engine import Simulation


def _request(rid, container=None, size=1024, submit=0.0):
    request = DiskRequest(
        rid=rid,
        path=f"/f{rid}",
        size_bytes=size,
        container=container,
        on_complete=None,
        submit_us=submit,
    )
    # The device normally stamps this at submit; do it by hand here.
    request.service_us = (
        DEFAULT_COSTS.disk_seek_us
        + DEFAULT_COSTS.disk_transfer_per_kb_us * (size / 1024.0)
    )
    return request


def test_factory_names():
    assert make_io_scheduler("fifo").name == "fifo"
    assert make_io_scheduler("wfq").name == "wfq"
    assert make_io_scheduler("fair").name == "wfq"
    with pytest.raises(ValueError):
        make_io_scheduler("elevator")


def test_fifo_strict_arrival_order():
    scheduler = FifoIOScheduler()
    requests = [_request(rid) for rid in (1, 2, 3)]
    for request in requests:
        scheduler.add(request, 0.0)
    assert len(scheduler) == 3
    popped = [scheduler.pop(0.0) for _ in range(3)]
    assert popped == requests
    assert scheduler.pop(0.0) is None


def test_wfq_single_flow_is_fifo():
    manager = ContainerManager()
    owner = manager.create("only")
    scheduler = WeightedFairIOScheduler()
    requests = [_request(rid, owner) for rid in (1, 2, 3)]
    for request in requests:
        scheduler.add(request, 0.0)
    order = []
    while len(scheduler):
        request = scheduler.pop(0.0)
        order.append(request)
        scheduler.charge(request, 0.0)
    assert order == requests


def test_wfq_equal_weights_interleave():
    """Two backlogged equal-weight flows alternate, regardless of how
    lopsided the arrival order was."""
    manager = ContainerManager()
    a = manager.create("a")
    b = manager.create("b")
    scheduler = WeightedFairIOScheduler()
    rid = 0
    for owner in (a, a, a, b, b, b):
        rid += 1
        scheduler.add(_request(rid, owner), 0.0)
    pattern = []
    while len(scheduler):
        request = scheduler.pop(0.0)
        pattern.append(request.container.name)
        scheduler.charge(request, 0.0)
    assert pattern == ["a", "b", "a", "b", "a", "b"]


def test_wfq_weight_ratio_shares_service():
    """A weight-3 flow gets ~3x the completions of a weight-1 flow."""
    manager = ContainerManager()
    heavy = manager.create("heavy", attrs=timeshare_attrs(weight=3.0))
    light = manager.create("light")
    scheduler = WeightedFairIOScheduler()
    rid = 0
    for _ in range(30):
        for owner in (heavy, light):
            rid += 1
            scheduler.add(_request(rid, owner), 0.0)
    served = {"heavy": 0, "light": 0}
    for _ in range(20):
        request = scheduler.pop(0.0)
        served[request.container.name] += 1
        scheduler.charge(request, 0.0)
    assert served["heavy"] == 15
    assert served["light"] == 5


def test_wfq_idle_flow_cannot_bank_credit():
    """A flow that sat idle is clamped to virtual time: it does not get
    to burn its whole backlog first when it returns."""
    manager = ContainerManager()
    busy = manager.create("busy")
    idler = manager.create("idler")
    scheduler = WeightedFairIOScheduler()
    rid = 0
    # The busy flow runs alone for a long stretch...
    for _ in range(10):
        rid += 1
        scheduler.add(_request(rid, busy), 0.0)
        request = scheduler.pop(0.0)
        scheduler.charge(request, 0.0)
    # ...then the idler arrives with a burst while busy stays backlogged.
    for _ in range(3):
        rid += 1
        scheduler.add(_request(rid, idler), 0.0)
    rid += 1
    scheduler.add(_request(rid, busy), 0.0)
    pattern = []
    while len(scheduler):
        request = scheduler.pop(0.0)
        pattern.append(request.container.name)
        scheduler.charge(request, 0.0)
    # Clamped to vtime, the idler does not sweep its whole burst 3-0
    # before the busy flow's request gets a turn.
    assert pattern == ["idler", "idler", "busy", "idler"]


def test_wfq_deterministic_tie_break_by_seq():
    manager = ContainerManager()
    a = manager.create("a")
    b = manager.create("b")
    scheduler = WeightedFairIOScheduler()
    first = _request(1, b)
    second = _request(2, a)
    scheduler.add(first, 0.0)
    scheduler.add(second, 0.0)
    assert scheduler.pop(0.0) is first  # equal tags: lower seq wins


def test_wfq_heavier_flow_wins_ties_via_finish_tag():
    """Finish-tag dispatch: a high-weight arrival undercuts an
    equal-start backlog instead of waiting out the round."""
    manager = ContainerManager()
    antagonists = [manager.create(f"antag-{i}") for i in range(4)]
    premium = manager.create("premium", attrs=timeshare_attrs(weight=8.0))
    scheduler = WeightedFairIOScheduler()
    rid = 0
    for owner in antagonists:
        rid += 1
        scheduler.add(_request(rid, owner), 0.0)
    rid += 1
    scheduler.add(_request(rid, premium), 0.0)  # arrives last
    assert scheduler.pop(0.0).container is premium


def test_wfq_isolation_on_device():
    """End to end on the device: with WFQ a high-weight flow's request
    overtakes a deep equal-weight backlog; with FIFO it waits it out."""
    manager = ContainerManager()
    hogs = [manager.create(f"hog-{i}") for i in range(4)]
    premium = manager.create("premium", attrs=timeshare_attrs(weight=8.0))

    def run(scheduler):
        sim = Simulation(seed=3)
        device = DiskDevice(sim, DEFAULT_COSTS, scheduler=scheduler)
        for _ in range(3):
            for hog in hogs:
                device.submit("/hog", 8 * 1024, hog)
        request = device.submit("/premium", 8 * 1024, premium)
        sim.run(until=1e9)
        return request.wait_us

    fifo_wait = run(FifoIOScheduler())
    wfq_wait = run(WeightedFairIOScheduler())
    service = DEFAULT_COSTS.disk_seek_us + 8 * DEFAULT_COSTS.disk_transfer_per_kb_us
    assert fifo_wait == pytest.approx(12 * service)  # behind all 12 hogs
    assert wfq_wait == pytest.approx(service)  # behind only the in-flight one
