"""The simulated disk device: service model, charging, completion."""

import pytest

from repro.core.operations import ContainerManager
from repro.io import DiskDevice, FifoIOScheduler
from repro.kernel.costs import DEFAULT_COSTS
from repro.sim.engine import Simulation


@pytest.fixture
def sim():
    return Simulation(seed=7)


@pytest.fixture
def device(sim):
    return DiskDevice(sim, DEFAULT_COSTS)


def test_service_time_model(device):
    assert device.service_time_us(0) == DEFAULT_COSTS.disk_seek_us
    assert device.service_time_us(1024) == (
        DEFAULT_COSTS.disk_seek_us + DEFAULT_COSTS.disk_transfer_per_kb_us
    )


def test_request_completes_after_service_time(sim, device):
    done = []
    request = device.submit("/a", 2048, None, on_complete=done.append)
    assert device.current is request
    sim.run(until=device.service_time_us(2048) + 1.0)
    assert done == [request]
    assert request.complete_us == pytest.approx(device.service_time_us(2048))
    assert device.busy_us == pytest.approx(device.service_time_us(2048))
    assert device.requests_completed == 1


def test_one_request_in_service_rest_queued(sim, device):
    first = device.submit("/a", 1024, None)
    second = device.submit("/b", 1024, None)
    assert device.current is first
    assert device.queued == 1
    sim.run(until=device.service_time_us(1024) + 1.0)
    assert device.current is second
    assert device.queued == 0


def test_charging_lands_on_request_container(sim, device):
    manager = ContainerManager()
    owner = manager.create("reader")
    device.submit("/a", 4096, owner)
    sim.run(until=1e6)
    assert owner.usage.disk_us == pytest.approx(device.service_time_us(4096))
    assert owner.usage.disk_bytes == 4096
    assert device.unaccounted_us == 0.0


def test_unowned_service_is_unaccounted(sim, device):
    device.submit("/a", 1024, None)
    sim.run(until=1e6)
    assert device.unaccounted_us == pytest.approx(
        device.service_time_us(1024)
    )


def test_conservation_across_mixed_requests(sim, device):
    manager = ContainerManager()
    a = manager.create("a")
    b = manager.create("b")
    for container, size in ((a, 1024), (b, 2048), (None, 512), (a, 4096)):
        device.submit("/f", size, container)
    sim.run(until=1e6)
    ledgered = a.usage.disk_us + b.usage.disk_us + device.unaccounted_us
    assert ledgered == pytest.approx(device.busy_us)
    assert device.total_bytes == 1024 + 2048 + 512 + 4096


def test_wait_us_measures_queueing(sim, device):
    device.submit("/a", 1024, None)
    second = device.submit("/b", 1024, None)
    sim.run(until=1e6)
    assert second.wait_us == pytest.approx(device.service_time_us(1024))


def test_negative_size_rejected(device):
    with pytest.raises(ValueError):
        device.submit("/a", -1, None)


def test_fifo_is_default_scheduler(device):
    assert isinstance(device.scheduler, FifoIOScheduler)
