"""Per-CPU run-queue scheduler: determinism, equivalence, stealing.

The SMP rework gave :class:`ContainerScheduler` one ready shard per
core, dequeue-on-dispatch, and a container-aware balancer with work
stealing.  These tests pin the properties that rework must not lose:

* seeded SMP runs are byte-deterministic (same digest twice) at 2 and
  4 cores, on both event-queue engines (wheel == heap);
* the legacy single-queue ``pick()`` protocol and the per-CPU
  ``pick_for_cpu``/``on_slice_end`` protocol produce the *same
  schedule* on one CPU (the pre-SMP behaviour is a special case);
* dequeue-on-dispatch means an entity can never be handed to two cores
  at once, including across a steal;
* stealing actually happens under a real multi-threaded server load,
  is mirrored one-for-one by ``sched.steal`` trace records, and does
  not break machine-wide fixed shares;
* the charging-conservation sanitizer holds per core: the per-core
  busy split recomposes to the machine-wide total at n_cpus=4.
"""

import hashlib

import pytest

from repro import Host, SystemMode, fixed_share_attrs, ip_addr
from repro.apps.httpserver import MultiThreadedServer
from repro.apps.webclient import HttpClient
from repro.core.attributes import timeshare_attrs
from repro.core.operations import ContainerManager
from repro.experiments.bench_scalability import BenchEntity
from repro.kernel.kernel import KernelConfig
from repro.sched.container_sched import ContainerScheduler
from repro.syscall import api
from tests.sched.test_trace_digest import _fresh_id_counters


def _server_host(n_cpus: int, seed: int = 29, **host_kwargs) -> Host:
    """A multi-threaded web server under concurrent load (the workload
    that exercises dispatch on every core, wakeups, and stealing)."""
    config = KernelConfig(mode=SystemMode.RC, n_cpus=n_cpus)
    host = Host(mode=SystemMode.RC, seed=seed, config=config, **host_kwargs)
    host.kernel.fs.add_file("/index.html", 2048)
    host.kernel.fs.warm("/index.html")
    MultiThreadedServer(host.kernel, n_threads=8).install()
    clients = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
        for i in range(12)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + index * 170.0)
    return host


def _smp_digest(n_cpus: int, seed: int = 29, queue=None) -> str:
    """Digest of every CPU slice (with its core) of a seeded SMP run."""
    with _fresh_id_counters():
        host = _server_host(n_cpus, seed=seed, queue=queue)
        records = host.sim.trace.record(["cpu.slice"])
        host.run(seconds=0.2)
    digest = hashlib.sha256()
    for record in records:
        line = (
            f"{record.time:.6f}|{record.data.get('kind')}"
            f"|{record.data.get('core')}"
            f"|{record.data.get('amount_us'):.6f}"
            f"|{record.data.get('charge')}|{record.data.get('entity')}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()


@pytest.mark.parametrize("n_cpus", [2, 4])
def test_smp_schedule_digest_is_deterministic(n_cpus):
    assert _smp_digest(n_cpus) == _smp_digest(n_cpus)


def test_wheel_and_heap_engines_agree_at_4_cpus():
    """The timing-wheel event queue must reproduce the binary heap's
    dispatch order bit for bit, SMP dispatch included."""
    assert _smp_digest(4, queue="wheel") == _smp_digest(4, queue="heap")


def _flat_sched(leaves: int, n_cpus: int):
    manager = ContainerManager()
    sched = ContainerScheduler(
        manager.root, quantum_us=1_000.0, window_us=10_000.0, n_cpus=n_cpus
    )
    entities = []
    for i in range(leaves):
        leaf = manager.create(f"p{i}", attrs=timeshare_attrs(weight=1.0))
        entities.append(BenchEntity(f"e{i}", leaf))
    for entity in entities:
        sched.attach(entity)
    return manager, sched, entities


def test_legacy_pick_matches_per_cpu_protocol_on_one_cpu():
    """On one CPU the new dequeue/requeue protocol must yield exactly
    the schedule the old immediate-reinsert ``pick()`` yielded."""
    _m1, legacy, _e1 = _flat_sched(7, n_cpus=1)
    _m2, percpu, _e2 = _flat_sched(7, n_cpus=1)
    legacy_seq = []
    percpu_seq = []
    now = 0.0
    prev = None
    for _ in range(50):
        entity = legacy.pick(now)
        legacy_seq.append(entity.name)
        container = entity.charge_container()
        container.charge_cpu(1_000.0)
        legacy.charge(entity, container, 1_000.0, now)
        if prev is not None:
            container = prev.charge_container()
            container.charge_cpu(1_000.0)
            percpu.charge(prev, container, 1_000.0, now)
            percpu.on_slice_end(prev, now)
        prev = percpu.pick_for_cpu(now, 0)
        percpu_seq.append(prev.name)
        now += 1_000.0
    assert legacy_seq == percpu_seq


def test_dequeued_entity_is_never_offered_twice():
    """Dequeue-on-dispatch: concurrent picks (including a steal) hand
    out distinct entities; re-queue makes them eligible again."""
    _manager, sched, _entities = _flat_sched(3, n_cpus=2)
    first = sched.pick_for_cpu(0.0, 0)
    second = sched.pick_for_cpu(0.0, 0)
    # Core 0's shard is now empty; the third entity lives on shard 1
    # and must be *stolen*, not duplicated.
    third = sched.pick_for_cpu(0.0, 0)
    names = {e.name for e in (first, second, third)}
    assert len(names) == 3
    assert sched.steals == 1
    # Everything is in flight: both cores now find nothing.
    assert sched.pick_for_cpu(0.0, 0) is None
    assert sched.pick_for_cpu(0.0, 1) is None
    # A completed slice makes its entity schedulable again.
    sched.on_slice_end(first, 1_000.0)
    assert sched.pick_for_cpu(1_000.0, 1) is first


def test_steals_happen_and_are_traced_under_server_load():
    host = _server_host(4)
    records = host.sim.trace.record(["sched.steal"])
    host.run(seconds=0.3)
    sched = host.kernel.scheduler
    assert sched.steals > 0
    assert len(records) == sched.steals
    for record in records:
        assert record.data["core"] != record.data["victim"]


def test_fixed_shares_hold_while_stealing():
    """Machine-wide proportional shares survive cross-shard migration:
    pass/vtime state is global, so a fixed-share group keeps its
    guarantee even while the balancer migrates work between shards."""
    host = _server_host(2, seed=31)

    def spin():
        while True:
            yield api.Compute(5_000.0)

    kernel = host.kernel
    big = kernel.containers.create("big", attrs=fixed_share_attrs(0.6))
    for i in range(3):
        kernel.spawn_process(f"pb{i}", spin, parent_container=big)
    host.run(seconds=0.5)
    from repro.core.hierarchy import subtree_usage

    assert host.kernel.scheduler.steals > 0
    total = kernel.cpu.accounting.total_cpu_us
    big_share = subtree_usage(big).cpu_us / total
    # The 0.6 guarantee must hold against the web-server load -- and
    # the spinners must not crowd out the timeshare layer either.
    assert big_share >= 0.55
    assert big_share <= 0.80


def test_sanitizer_per_core_conservation_at_4_cpus():
    host = _server_host(4, sanitize=True)
    host.run(seconds=0.3)
    sanitizer = host.kernel.sanitizer
    assert sanitizer is not None
    violations = sanitizer.finish()
    assert violations == []
    cpu = host.kernel.cpu
    assert sum(cpu.core_busy_us) == pytest.approx(
        cpu.accounting.total_cpu_us, abs=1e-6
    )
    for busy in cpu.core_busy_us:
        assert busy <= host.now + 1e-6


def test_alternate_policies_dispatch_on_smp_via_delegation():
    """Schedulers without a native per-CPU protocol (lottery, unix
    timeshare) fall back to the base-class delegation: ``pick_for_cpu``
    routes to ``pick(now, exclude)`` with the dispatcher's running set,
    so they keep working on a multi-core host with the old exclude-set
    semantics -- no double dispatch, both cores productive."""
    from repro.sched.lottery import LotteryScheduler

    config = KernelConfig(mode=SystemMode.RC, n_cpus=2)
    config.scheduler_factory = lambda kernel: LotteryScheduler(
        kernel.sim.rng.fork("lottery")
    )
    host = Host(mode=SystemMode.RC, seed=37, config=config)

    def spin():
        while True:
            yield api.Compute(1_000.0)

    processes = [host.kernel.spawn_process(f"p{i}", spin) for i in range(2)]
    host.run(seconds=0.2)
    for process in processes:
        usage = process.default_container.usage.cpu_us
        # Each spinner got real time on its own core...
        assert usage > host.now * 0.4
        # ...and never ran on two cores at once.
        assert usage <= host.now * 1.001
