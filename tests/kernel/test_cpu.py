"""CPU dispatcher: interrupt precedence, preemption, accounting."""

import pytest

from repro import Host, SystemMode
from repro.kernel.cpu import InterruptJob
from repro.syscall import api


@pytest.fixture
def host():
    return Host(mode=SystemMode.RC, seed=51)


def test_interrupt_job_runs_and_accounts(host):
    fired = []
    job = InterruptJob(cost_us=10.0, action=lambda: fired.append(host.now))
    host.kernel.cpu.post_hard_interrupt(job)
    host.run(until_us=100.0)
    assert fired == [10.0]
    acct = host.kernel.cpu.accounting
    assert acct.interrupt_cpu_us == pytest.approx(10.0)
    assert acct.unaccounted_cpu_us == pytest.approx(10.0)


def test_interrupt_charged_to_container(host):
    container = host.kernel.containers.create("c")
    job = InterruptJob(cost_us=7.0, action=lambda: None, charge=container)
    host.kernel.cpu.post_hard_interrupt(job)
    host.run(until_us=100.0)
    assert container.usage.cpu_us == pytest.approx(7.0)
    assert host.kernel.cpu.accounting.unaccounted_cpu_us == 0.0


def test_hard_interrupt_preempts_thread(host):
    """A packet arriving mid-slice preempts the thread; the thread's
    total simulated work is unchanged (charged in two pieces)."""
    timeline = {}

    def program():
        start = yield api.GetTime()
        yield api.Compute(1_000.0)
        timeline["end"] = (yield api.GetTime()) - start

    host.kernel.spawn_process("p", program)
    # Interrupt lands in the middle of the 1000us compute.
    host.sim.at(
        500.0,
        lambda: host.kernel.cpu.post_hard_interrupt(
            InterruptJob(cost_us=50.0, action=lambda: None)
        ),
    )
    host.run(until_us=10_000.0)
    # The compute took its 1000us of CPU plus the 50us the interrupt
    # stole, plus dispatch overheads.
    assert timeline["end"] >= 1_050.0


def test_soft_interrupt_yields_to_hard(host):
    order = []
    cpu = host.kernel.cpu
    cpu.post_soft_interrupt(InterruptJob(cost_us=30.0, action=lambda: order.append("soft")))
    cpu.post_hard_interrupt(InterruptJob(cost_us=10.0, action=lambda: order.append("hard")))
    host.run(until_us=100.0)
    # The soft job was already queued first but the hard queue drains first.
    assert order == ["hard", "soft"]


def test_softirq_queue_bound_drops(host):
    cpu = host.kernel.cpu
    cpu.soft_queue_limit = 2
    accepted = [
        cpu.post_soft_interrupt(InterruptJob(cost_us=1.0, action=lambda: None))
        for _ in range(4)
    ]
    assert accepted == [True, True, False, False]
    assert cpu.soft_drops == 2


def test_conservation_of_cpu_time(host):
    """charged + unaccounted == total busy time (destroyed containers'
    charges included)."""
    destroyed_cpu = []
    host.kernel.containers.on_destroy.append(
        lambda c: destroyed_cpu.append(c.usage.cpu_us)
    )

    def spin():
        for _ in range(20):
            yield api.Compute(100.0)

    host.kernel.spawn_process("spin", spin)
    for t in range(5):
        host.sim.at(
            float(t * 300 + 50),
            lambda: host.kernel.cpu.post_hard_interrupt(
                InterruptJob(cost_us=20.0, action=lambda: None)
            ),
        )
    host.run(until_us=50_000.0)
    acct = host.kernel.cpu.accounting
    charged = sum(
        c.usage.cpu_us for c in host.kernel.containers.all_containers()
    ) + sum(destroyed_cpu)
    assert charged + acct.unaccounted_cpu_us == pytest.approx(
        acct.total_cpu_us, rel=1e-9
    )


def test_quantum_slices_long_compute(host):
    """A long compute is delivered in quantum-sized slices so peers
    interleave rather than waiting for the whole burst."""
    progress = {"a": 0, "b": 0}

    def make(name):
        def body():
            for _ in range(10):
                yield api.Compute(1_000.0)
                progress[name] += 1

        return body

    host.kernel.spawn_process("a", make("a"))
    host.kernel.spawn_process("b", make("b"))
    host.run(until_us=10_500.0)
    # Both made roughly equal progress -- neither ran to completion first.
    assert progress["a"] >= 3
    assert progress["b"] >= 3


def test_idle_time_computation(host):
    def nap():
        yield api.Sleep(5_000.0)
        yield api.Compute(1_000.0)

    host.kernel.spawn_process("napper", nap)
    host.run(until_us=10_000.0)
    idle = host.kernel.cpu.idle_time(10_000.0)
    assert idle == pytest.approx(10_000.0 - host.kernel.cpu.accounting.total_cpu_us)
    assert idle > 8_000.0
