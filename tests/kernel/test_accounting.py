"""ResourceUsage / SystemAccounting ledgers."""

import pytest

from repro.kernel.accounting import ResourceUsage, SystemAccounting


def test_cpu_charge_accumulates():
    usage = ResourceUsage()
    usage.charge_cpu(10.0)
    usage.charge_cpu(5.0, network=True)
    usage.charge_cpu(2.0, syscall=True)
    assert usage.cpu_us == 17.0
    assert usage.cpu_network_us == 5.0
    assert usage.cpu_syscall_us == 2.0


def test_negative_cpu_charge_rejected():
    with pytest.raises(ValueError):
        ResourceUsage().charge_cpu(-1.0)


def test_memory_charge_and_peak():
    usage = ResourceUsage()
    usage.charge_memory(100)
    usage.charge_memory(50)
    usage.charge_memory(-120)
    assert usage.memory_bytes == 30
    assert usage.memory_peak_bytes == 150


def test_memory_negative_balance_rejected():
    usage = ResourceUsage()
    usage.charge_memory(10)
    with pytest.raises(ValueError):
        usage.charge_memory(-20)


def test_snapshot_is_independent():
    usage = ResourceUsage()
    usage.charge_cpu(5.0)
    snap = usage.snapshot()
    usage.charge_cpu(5.0)
    assert snap.cpu_us == 5.0
    assert usage.cpu_us == 10.0


def test_addition_is_elementwise():
    a = ResourceUsage(cpu_us=1.0, packets_received=2)
    b = ResourceUsage(cpu_us=3.0, packets_received=5, syscalls=1)
    total = a + b
    assert total.cpu_us == 4.0
    assert total.packets_received == 7
    assert total.syscalls == 1


def test_validate_clean_ledger():
    usage = ResourceUsage()
    usage.charge_cpu(10.0, network=True)
    usage.charge_cpu(4.0, syscall=True)
    usage.charge_memory(100)
    usage.charge_memory(-40)
    assert usage.validate() == []


def test_validate_catches_negative_cpu_fields():
    for name in ("cpu_us", "cpu_network_us", "cpu_syscall_us"):
        usage = ResourceUsage()
        setattr(usage, name, -1.0)
        assert any(name in p for p in usage.validate())


def test_validate_catches_negative_memory():
    usage = ResourceUsage()
    usage.memory_bytes = -5
    problems = usage.validate()
    assert any("memory_bytes" in p for p in problems)


def test_validate_catches_peak_below_current():
    usage = ResourceUsage()
    usage.memory_bytes = 100
    usage.memory_peak_bytes = 50
    assert any("memory_peak_bytes" in p for p in usage.validate())


def test_validate_catches_subledger_overflow():
    usage = ResourceUsage(cpu_us=10.0, cpu_network_us=8.0, cpu_syscall_us=5.0)
    assert any("sub-ledgers exceed total" in p for p in usage.validate())


def test_validate_tolerates_float_slop():
    """Disjoint sub-ledgers summing to cpu_us within float tolerance are
    fine -- validate() must not cry wolf on healthy accumulation."""
    usage = ResourceUsage()
    for _ in range(1000):
        usage.charge_cpu(0.1, network=True)
    for _ in range(1000):
        usage.charge_cpu(0.1, syscall=True)
    assert usage.validate() == []


def test_validate_catches_negative_counts():
    usage = ResourceUsage()
    usage.packets_dropped = -1
    assert any("packets_dropped" in p for p in usage.validate())


def test_utilization():
    acct = SystemAccounting(total_cpu_us=500_000.0)
    assert acct.utilization(1_000_000.0) == pytest.approx(0.5)
    assert acct.utilization(0.0) == 0.0
    # Clamped at 1.0 even with float accumulation slop.
    acct.total_cpu_us = 1_100_000.0
    assert acct.utilization(1_000_000.0) == 1.0
