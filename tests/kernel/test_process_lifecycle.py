"""Process/thread lifecycle and resource cleanup."""

import pytest

from repro import Host, SystemMode
from repro.kernel.process import ThreadState
from repro.syscall import api


@pytest.fixture
def host():
    h = Host(mode=SystemMode.RC, seed=53)
    h.kernel.fs.add_file("/doc", 512)
    return h


def test_thread_completes_and_process_exits(host):
    def quick():
        yield api.Compute(10.0)

    process = host.kernel.spawn_process("p", quick)
    host.run(until_us=10_000.0)
    assert not process.alive
    assert process.pid not in host.kernel.processes


def test_default_container_released_at_exit(host):
    def quick():
        yield api.Compute(10.0)

    process = host.kernel.spawn_process("p", quick)
    default = process.default_container
    host.run(until_us=10_000.0)
    assert not default.alive


def test_process_survives_while_any_thread_lives(host):
    def short():
        yield api.Compute(10.0)

    def long():
        yield api.Sleep(50_000.0)

    process = host.kernel.spawn_process("p", short)
    host.kernel.spawn_thread(process, long(), "long")
    host.run(until_us=20_000.0)
    assert process.alive
    host.run(until_us=100_000.0)
    assert not process.alive


def test_exit_syscall_terminates_thread(host):
    after = {"ran": False}

    def program():
        yield api.Exit()
        after["ran"] = True  # pragma: no cover - must not run
        yield api.Compute(1.0)

    host.kernel.spawn_process("p", program)
    host.run(until_us=10_000.0)
    assert not after["ran"]


def test_misbehaving_thread_raises_loudly(host):
    def bad():
        yield "not a syscall"

    # The first op is staged synchronously, so the failure surfaces at
    # spawn time; a later bad yield would surface out of host.run().
    with pytest.raises(RuntimeError, match="misbehaved"):
        host.kernel.spawn_process("p", bad)


def test_forked_child_outlives_parent(host):
    log = []

    def child_main():
        def body():
            yield api.Sleep(20_000.0)
            log.append("child done")

        return body()

    def parent():
        yield api.Fork(child_main, name="kid", pass_fds=[])
        log.append("parent done")

    host.kernel.spawn_process("p", parent)
    host.run(until_us=100_000.0)
    assert log == ["parent done", "child done"]


def test_inherited_binding_keeps_container_alive(host):
    """fork(inherit_binding=True): the container survives the parent
    dropping every reference, held by the child's thread binding."""
    state = {}

    def child_main():
        def body():
            yield api.Sleep(30_000.0)

        return body()

    def parent():
        cfd = yield api.ContainerCreate("activity")
        yield api.ContainerBindThread(cfd)
        yield api.Fork(child_main, name="kid", inherit_binding=True, pass_fds=[])
        entry = None  # parent exits; its fd and binding go away
        del entry

    process = host.kernel.spawn_process("p", parent)
    host.run(until_us=5_000.0)
    container = next(
        (c for c in host.kernel.containers.all_containers()
         if c.name == "activity"),
        None,
    )
    assert container is not None and container.alive
    host.run(until_us=100_000.0)  # child exits too
    assert not container.alive


def test_blocked_thread_state(host):
    def blocker():
        yield api.Sleep(50_000.0)

    process = host.kernel.spawn_process("p", blocker)
    host.run(until_us=10_000.0)
    thread = process.threads[0]
    assert thread.state is ThreadState.BLOCKED
    host.run(until_us=100_000.0)
    assert thread.state is ThreadState.DONE


def test_spawn_thread_runs_concurrently(host):
    counts = {"a": 0, "b": 0}

    def worker(tag):
        def body():
            for _ in range(5):
                yield api.Compute(100.0)
                counts[tag] += 1

        return body

    def main():
        yield api.SpawnThread(worker("b"), name="b")
        yield from worker("a")()

    host.kernel.spawn_process("p", main)
    host.run(until_us=50_000.0)
    assert counts == {"a": 5, "b": 5}
