"""Descriptor table semantics."""

import pytest

from repro.kernel.descriptors import Descriptor, DescriptorKind, DescriptorTable
from repro.kernel.errors import BadDescriptorError


def test_lowest_free_allocation():
    table = DescriptorTable()
    a = table.allocate(DescriptorKind.SOCKET, "sa")
    b = table.allocate(DescriptorKind.SOCKET, "sb")
    assert (a.fd, b.fd) == (0, 1)
    table.remove(0)
    c = table.allocate(DescriptorKind.SOCKET, "sc")
    assert c.fd == 0  # lowest free is reused, as in UNIX


def test_lookup_unknown_raises():
    with pytest.raises(BadDescriptorError):
        DescriptorTable().lookup(3)


def test_lookup_kind_checks_type():
    table = DescriptorTable()
    entry = table.allocate(DescriptorKind.CONTAINER, "c")
    table.lookup_kind(entry.fd, DescriptorKind.CONTAINER)
    with pytest.raises(BadDescriptorError):
        table.lookup_kind(entry.fd, DescriptorKind.SOCKET)


def test_lookup_kind_accepts_alternatives():
    table = DescriptorTable()
    entry = table.allocate(DescriptorKind.LISTEN_SOCKET, "ls")
    found = table.lookup_kind(
        entry.fd, DescriptorKind.SOCKET, DescriptorKind.LISTEN_SOCKET
    )
    assert found is entry


def test_remove_returns_entry():
    table = DescriptorTable()
    entry = table.allocate(DescriptorKind.PIPE, "p")
    removed = table.remove(entry.fd)
    assert removed.obj == "p"
    with pytest.raises(BadDescriptorError):
        table.remove(entry.fd)


def test_entries_sorted_by_fd():
    table = DescriptorTable()
    for name in ("a", "b", "c"):
        table.allocate(DescriptorKind.FILE, name)
    table.remove(1)
    table.allocate(DescriptorKind.FILE, "d")
    assert [e.obj for e in table.entries()] == ["a", "d", "c"]


def test_install_copy_preserves_fd_number():
    parent = DescriptorTable()
    entry = parent.allocate(DescriptorKind.SOCKET, "shared")
    parent.allocate(DescriptorKind.SOCKET, "other")
    child = DescriptorTable()
    copy = child.install_copy_of(parent.lookup(1))
    assert copy.fd == 1
    assert 0 not in child
    assert child.lookup(1).obj == "other"


def test_install_copy_rejects_collision():
    parent = DescriptorTable()
    entry = parent.allocate(DescriptorKind.SOCKET, "x")
    child = DescriptorTable()
    child.install_copy_of(entry)
    with pytest.raises(BadDescriptorError):
        child.install_copy_of(entry)


def test_contains_and_len():
    table = DescriptorTable()
    entry = table.allocate(DescriptorKind.EVENT_QUEUE, "evq")
    assert entry.fd in table
    assert len(table) == 1
