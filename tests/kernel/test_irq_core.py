"""KernelConfig.irq_core: pinning interrupt delivery to a chosen core."""

import pytest

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.cluster import Cluster
from repro.kernel.kernel import KernelConfig


def _run_server(config: KernelConfig):
    host = Host(mode=SystemMode.RC, seed=9, config=config)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    records = host.sim.trace.record(["cpu.slice"])
    EventDrivenServer(host.kernel, use_containers=True).install()
    for index in range(4):
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, index + 1), f"c{index}",
            think_time_us=300.0, rng=host.sim.rng.fork(f"c{index}"),
        ).start(at_us=2_000.0 + index * 111.0)
    host.run(seconds=0.1)
    return host, records


def _interrupt_cores(records):
    return {
        record.data["core"]
        for record in records
        if record.data["kind"] == "hard"
    }


def test_default_interrupts_on_core_zero():
    host, records = _run_server(KernelConfig(n_cpus=2))
    assert host.kernel.cpu.irq_core == 0
    assert _interrupt_cores(records) == {0}


def test_interrupts_follow_configured_core():
    host, records = _run_server(KernelConfig(n_cpus=2, irq_core=1))
    assert host.kernel.cpu.irq_core == 1
    assert _interrupt_cores(records) == {1}


def test_pinned_config_is_deterministic():
    # Moving the interrupt core legitimately reshapes the schedule on a
    # contended box (interrupt fill interacts with preemption and
    # stealing) -- but any *given* placement must replay identically.
    _host0, records0 = _run_server(KernelConfig(n_cpus=2, irq_core=1))
    _host1, records1 = _run_server(KernelConfig(n_cpus=2, irq_core=1))
    flat = lambda records: [  # noqa: E731 - local shorthand
        (r.time, r.data["kind"], r.data["amount_us"],
         r.data["charge"], r.data["core"])
        for r in records
    ]
    assert flat(records0) == flat(records1)


def test_irq_core_out_of_range_rejected():
    with pytest.raises(ValueError):
        Host(mode=SystemMode.RC, config=KernelConfig(n_cpus=2, irq_core=2))
    with pytest.raises(ValueError):
        Host(mode=SystemMode.RC, config=KernelConfig(irq_core=-1))


def test_cluster_host_pins_irq_core():
    cluster = Cluster(seed=1)
    cluster.add_host("lb", n_cpus=4, irq_core=3)
    cluster.add_host("be", n_cpus=2)
    assert cluster.kernel("lb").cpu.irq_core == 3
    assert cluster.kernel("be").cpu.irq_core == 0
