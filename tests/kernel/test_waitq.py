"""Wait queue semantics."""

from repro.kernel.waitq import WaitQueue


class FakeThread:
    def __init__(self, name):
        self.name = name
        self.waiting_on = []
        self.woken_with = None

    def clear_waits(self):
        for queue in self.waiting_on:
            queue.remove(self)
        self.waiting_on.clear()


def waker(thread, tag):
    thread.woken_with = tag


def test_fifo_wake_order():
    queue = WaitQueue("q")
    a, b = FakeThread("a"), FakeThread("b")
    queue.add(a)
    queue.add(b)
    assert queue.wake_one(waker, "x")
    assert a.woken_with == "x"
    assert b.woken_with is None


def test_wake_empty_returns_false():
    assert not WaitQueue().wake_one(waker)


def test_wake_all_counts():
    queue = WaitQueue()
    threads = [FakeThread(str(i)) for i in range(3)]
    for thread in threads:
        queue.add(thread)
    assert queue.wake_all(waker, "go") == 3
    assert all(t.woken_with == "go" for t in threads)
    assert len(queue) == 0


def test_add_is_idempotent():
    queue = WaitQueue()
    thread = FakeThread("t")
    queue.add(thread)
    queue.add(thread)
    assert len(queue) == 1


def test_multi_queue_wake_deregisters_everywhere():
    """A thread parked on several queues (select) leaves all on wake."""
    q1, q2 = WaitQueue("q1"), WaitQueue("q2")
    thread = FakeThread("t")
    q1.add(thread)
    q2.add(thread)
    assert q1.wake_one(waker, "ready")
    assert len(q1) == 0
    assert len(q2) == 0
    assert thread.waiting_on == []


def test_remove_without_wake():
    queue = WaitQueue()
    thread = FakeThread("t")
    queue.add(thread)
    queue.remove(thread)
    assert len(queue) == 0
    assert thread.woken_with is None
