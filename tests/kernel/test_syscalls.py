"""Syscall-layer behaviour through small in-simulation programs."""

import pytest

from repro import Host, SystemMode
from repro.core.attributes import timeshare_attrs
from repro.kernel.errors import (
    BadDescriptorError,
    ContainerPolicyError,
    WouldBlockError,
)
from repro.syscall import api


def run_program(host, body_factory, horizon_s=5.0):
    """Spawn a process running the program and run the simulation."""
    result = {}

    def main():
        value = yield from body_factory()
        result["value"] = value

    host.kernel.spawn_process("prog", main)
    host.run(until_us=host.sim.now + horizon_s * 1e6)
    return result


@pytest.fixture
def host():
    h = Host(mode=SystemMode.RC, seed=5)
    h.kernel.fs.add_file("/doc", 2048)
    return h


def test_compute_consumes_simulated_time(host):
    def program():
        start = yield api.GetTime()
        yield api.Compute(500.0)
        end = yield api.GetTime()
        return end - start

    result = run_program(host, program)
    assert result["value"] >= 500.0


def test_sleep_blocks_without_cpu(host):
    def program():
        start = yield api.GetTime()
        yield api.Sleep(10_000.0)
        end = yield api.GetTime()
        return end - start

    result = run_program(host, program)
    assert result["value"] >= 10_000.0
    # Sleep must not burn CPU.
    assert host.kernel.cpu.accounting.total_cpu_us < 1_000.0


def test_negative_compute_rejected(host):
    def program():
        try:
            yield api.Compute(-5.0)
        except Exception as err:
            return type(err).__name__
        return "no error"

    # Invalid Compute cost is a programming error surfaced loudly.
    with pytest.raises(Exception):
        run_program(host, program)


def test_container_create_and_usage_roundtrip(host):
    def program():
        fd = yield api.ContainerCreate("mine", attrs=timeshare_attrs(priority=6))
        attrs = yield api.ContainerGetAttrs(fd)
        yield api.ContainerBindThread(fd)
        yield api.Compute(1_000.0)
        usage = yield api.ContainerGetUsage(fd)
        return attrs.numeric_priority, usage.cpu_us

    result = run_program(host, program)
    priority, cpu = result["value"]
    assert priority == 6
    assert cpu >= 1_000.0


def test_container_bind_requires_leaf(host):
    def program():
        from repro.core.attributes import fixed_share_attrs

        parent = yield api.ContainerCreate("p", attrs=fixed_share_attrs(0.5))
        yield api.ContainerCreate("kid", parent_fd=parent)
        try:
            yield api.ContainerBindThread(parent)
        except ContainerPolicyError:
            return "rejected"
        return "accepted"

    assert run_program(host, program)["value"] == "rejected"


def test_container_api_disabled_in_unmodified_mode():
    host = Host(mode=SystemMode.UNMODIFIED, seed=5)

    def program():
        try:
            yield api.ContainerCreate("nope")
        except ContainerPolicyError:
            return "disabled"
        return "enabled"

    assert run_program(host, program)["value"] == "disabled"


def test_container_get_binding_returns_default(host):
    def program():
        fd = yield api.ContainerGetBinding()
        attrs = yield api.ContainerGetAttrs(fd)
        return attrs is not None

    assert run_program(host, program)["value"] is True


def test_close_unknown_fd_raises_ebadf(host):
    def program():
        try:
            yield api.Close(42)
        except BadDescriptorError:
            return "ebadf"
        return "closed"

    assert run_program(host, program)["value"] == "ebadf"


def test_bind_port_conflict(host):
    def program():
        fd1 = yield api.Socket()
        yield api.Bind(fd1, 80)
        fd2 = yield api.Socket()
        try:
            yield api.Bind(fd2, 80)
        except Exception as err:
            return type(err).__name__
        return "ok"

    assert run_program(host, program)["value"] == "AddressInUseError"


def test_bind_same_port_different_filters_ok(host):
    from repro.net.filters import AddrFilter

    def program():
        fd1 = yield api.Socket()
        yield api.Bind(fd1, 80)
        fd2 = yield api.Socket()
        yield api.Bind(fd2, 80, AddrFilter(template=0x0A000000, prefix_len=8))
        return "ok"

    assert run_program(host, program)["value"] == "ok"


def test_accept_nonblocking_would_block(host):
    def program():
        fd = yield api.Socket()
        yield api.Bind(fd, 80)
        yield api.Listen(fd)
        try:
            yield api.Accept(fd, blocking=False)
        except WouldBlockError:
            return "wouldblock"
        return "got one"

    assert run_program(host, program)["value"] == "wouldblock"


def test_select_timeout_returns_empty(host):
    def program():
        fd = yield api.Socket()
        yield api.Bind(fd, 80)
        yield api.Listen(fd)
        ready = yield api.Select([fd], timeout_us=5_000.0)
        return ready

    assert run_program(host, program)["value"] == []


def test_select_empty_set_rejected(host):
    def program():
        try:
            yield api.Select([])
        except Exception as err:
            return type(err).__name__
        return "ok"

    assert run_program(host, program)["value"] == "InvalidArgumentError"


def test_read_file_returns_size_and_charges(host):
    def program():
        size = yield api.ReadFile("/doc")
        return size

    assert run_program(host, program)["value"] == 2048


def test_read_missing_file_raises(host):
    def program():
        try:
            yield api.ReadFile("/nope")
        except Exception as err:
            return type(err).__name__
        return "ok"

    assert run_program(host, program)["value"] == "FileNotFoundError_"


def test_pipe_roundtrip(host):
    def program():
        fd = yield api.PipeCreate()
        ok = yield api.PipeWrite(fd, {"n": 1})
        message = yield api.PipeRead(fd)
        return ok, message["n"]

    assert run_program(host, program)["value"] == (True, 1)


def test_pipe_nonblocking_read(host):
    def program():
        fd = yield api.PipeCreate()
        try:
            yield api.PipeRead(fd, blocking=False)
        except WouldBlockError:
            return "wouldblock"
        return "data"

    assert run_program(host, program)["value"] == "wouldblock"


def test_pipe_capacity_bound(host):
    def program():
        fd = yield api.PipeCreate(capacity=2)
        first = yield api.PipeWrite(fd, 1)
        second = yield api.PipeWrite(fd, 2)
        third = yield api.PipeWrite(fd, 3)
        return first, second, third

    assert run_program(host, program)["value"] == (True, True, False)


def test_pipe_blocking_read_woken_by_writer(host):
    log = []

    def reader_factory(pipe_fd):
        def reader():
            value = yield api.PipeRead(pipe_fd)
            log.append(value)

        return reader

    def program():
        fd = yield api.PipeCreate()
        yield api.SpawnThread(reader_factory(fd), name="reader")
        yield api.Sleep(5_000.0)
        yield api.PipeWrite(fd, "hello")
        yield api.Sleep(5_000.0)
        return "done"

    run_program(host, program)
    assert log == ["hello"]


def test_spawn_thread_inherits_binding(host):
    seen = {}

    def child():
        fd = yield api.ContainerGetBinding()
        attrs = yield api.ContainerGetAttrs(fd)
        seen["priority"] = attrs.numeric_priority

    def program():
        cfd = yield api.ContainerCreate("special", attrs=timeshare_attrs(priority=8))
        yield api.ContainerBindThread(cfd)
        yield api.SpawnThread(lambda: child(), name="kid")
        yield api.Sleep(5_000.0)

    run_program(host, program)
    assert seen["priority"] == 8


def test_fork_inherits_descriptors(host):
    seen = {}

    def child_main():
        def body():
            size = yield api.ReadFile("/doc")
            seen["size"] = size

        return body()

    def program():
        yield api.ContainerCreate("held")  # occupies an fd the child copies
        pid = yield api.Fork(child_main, name="kid")
        yield api.Sleep(10_000.0)
        return pid

    result = run_program(host, program)
    assert result["value"] >= 2
    assert seen["size"] == 2048


def test_fork_pass_fds_limits_inheritance(host):
    seen = {}

    def child_main():
        def body():
            try:
                yield api.ContainerGetAttrs(0)
            except BadDescriptorError:
                seen["inherited"] = False
            else:
                seen["inherited"] = True

        return body()

    def program():
        yield api.ContainerCreate("not-passed")  # fd 0
        yield api.Fork(child_main, name="kid", pass_fds=[])
        yield api.Sleep(10_000.0)

    run_program(host, program)
    assert seen["inherited"] is False


def test_container_send_to_other_process(host):
    seen = {}

    def peer_main():
        def body():
            yield api.Sleep(50_000.0)

        return body()

    def program():
        peer_pid = yield api.Fork(peer_main, name="peer", pass_fds=[])
        cfd = yield api.ContainerCreate("shared")
        remote_fd = yield api.ContainerSendTo(cfd, peer_pid)
        seen["remote_fd"] = remote_fd
        return remote_fd

    result = run_program(host, program)
    assert result["value"] >= 0


def test_get_handle_by_cid(host):
    target = host.kernel.containers.create("known")

    def program():
        fd = yield api.ContainerGetHandle(target.cid)
        attrs = yield api.ContainerGetAttrs(fd)
        return attrs is not None

    assert run_program(host, program)["value"] is True


def test_reset_scheduler_binding(host):
    def program():
        a = yield api.ContainerCreate("a")
        b = yield api.ContainerCreate("b")
        yield api.ContainerBindThread(a)
        yield api.ContainerBindThread(b)
        yield api.ContainerResetSchedBinding()
        return "ok"

    assert run_program(host, program)["value"] == "ok"
    # After reset, only the current binding remains in the set.
    # (The thread exited, so check is indirect: no crash, clean exit.)
