"""Randomized syscall programs (hypothesis-driven fuzzing).

Generates random (but type-valid) syscall sequences across several
concurrent processes and asserts the kernel-wide invariants that must
hold for *any* program: no crash, CPU-time conservation, container
hierarchy validity, and non-negative ledgers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Host, SystemMode
from repro.core.hierarchy import validate_hierarchy
from repro.kernel.errors import KernelError
from repro.syscall import api


def op_strategy():
    """One random syscall step (an opcode plus arguments)."""
    return st.one_of(
        st.tuples(st.just("compute"), st.floats(0.0, 500.0)),
        st.tuples(st.just("sleep"), st.floats(0.0, 2_000.0)),
        st.tuples(st.just("create"), st.integers(0, 9)),
        st.tuples(st.just("bind"), st.integers(0, 9)),
        st.tuples(st.just("close"), st.integers(0, 9)),
        st.tuples(st.just("usage"), st.integers(0, 9)),
        st.tuples(st.just("pipe_rt"), st.integers(0, 100)),
        st.tuples(st.just("readfile"), st.booleans()),
        st.tuples(st.just("getbinding"), st.booleans()),
    )


def make_program(steps):
    """Turn a step list into a thread body that tolerates kernel errors."""

    def body():
        created: list[int] = []
        for opcode, arg in steps:
            try:
                if opcode == "compute":
                    yield api.Compute(arg)
                elif opcode == "sleep":
                    yield api.Sleep(arg)
                elif opcode == "create":
                    created.append((yield api.ContainerCreate(f"fz{arg}")))
                elif opcode == "bind" and created:
                    yield api.ContainerBindThread(
                        created[arg % len(created)]
                    )
                elif opcode == "close" and created:
                    fd = created.pop(arg % len(created))
                    yield api.Close(fd)
                elif opcode == "usage" and created:
                    yield api.ContainerGetUsage(created[arg % len(created)])
                elif opcode == "pipe_rt":
                    pfd = yield api.PipeCreate(capacity=4)
                    yield api.PipeWrite(pfd, arg)
                    value = yield api.PipeRead(pfd)
                    assert value == arg
                    yield api.Close(pfd)
                elif opcode == "readfile":
                    yield api.ReadFile("/fuzz.dat")
                elif opcode == "getbinding":
                    fd = yield api.ContainerGetBinding()
                    yield api.Close(fd)
            except KernelError:
                continue  # rejected operations are fine; crashes are not

    return body


@given(
    programs=st.lists(
        st.lists(op_strategy(), min_size=1, max_size=25),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_random_programs_preserve_kernel_invariants(programs):
    host = Host(mode=SystemMode.RC, seed=4242)
    host.kernel.fs.add_file("/fuzz.dat", 2048)
    host.kernel.fs.warm("/fuzz.dat")
    destroyed_cpu = []
    host.kernel.containers.on_destroy.append(
        lambda c: destroyed_cpu.append(c.usage.cpu_us)
    )
    for index, steps in enumerate(programs):
        host.kernel.spawn_process(f"fuzz{index}", make_program(steps))
    host.run(seconds=0.2)

    # 1. Hierarchy is structurally valid.
    validate_hierarchy(host.kernel.containers.root)
    # 2. CPU conservation: charged (live + destroyed) + unaccounted
    #    equals total busy time.
    acct = host.kernel.cpu.accounting
    charged = sum(
        c.usage.cpu_us for c in host.kernel.containers.all_containers()
    ) + sum(destroyed_cpu)
    assert abs(charged + acct.unaccounted_cpu_us - acct.total_cpu_us) < 1e-6
    # 3. Busy time never exceeds elapsed time (uniprocessor).
    assert acct.total_cpu_us <= host.now + 1e-6
    # 4. Ledgers are non-negative.
    for container in host.kernel.containers.all_containers():
        assert container.usage.cpu_us >= 0.0
        assert container.usage.memory_bytes >= 0


@given(
    steps=st.lists(op_strategy(), min_size=1, max_size=30),
    seed=st.integers(0, 1_000),
)
@settings(max_examples=25, deadline=None)
def test_random_programs_are_deterministic(steps, seed):
    def run_once():
        host = Host(mode=SystemMode.RC, seed=seed)
        host.kernel.fs.add_file("/fuzz.dat", 2048)
        host.kernel.fs.warm("/fuzz.dat")
        host.kernel.spawn_process("fuzz", make_program(steps))
        host.run(seconds=0.1)
        return (
            host.sim.events_dispatched,
            round(host.kernel.cpu.accounting.total_cpu_us, 6),
        )

    assert run_once() == run_once()
