"""KernelConfig semantics and mode wiring."""

import pytest

from repro import Host, SystemMode
from repro.kernel.kernel import KernelConfig
from repro.net.procmodel import NetMode
from repro.sched.lottery import LotteryScheduler


def test_mode_to_net_mode_mapping():
    assert SystemMode.UNMODIFIED.net_mode is NetMode.SOFTIRQ
    assert SystemMode.LRP.net_mode is NetMode.LRP
    assert SystemMode.RC.net_mode is NetMode.RC


def test_container_api_defaults_follow_mode():
    assert KernelConfig(mode=SystemMode.RC).container_api_enabled
    assert not KernelConfig(mode=SystemMode.UNMODIFIED).container_api_enabled
    assert not KernelConfig(mode=SystemMode.LRP).container_api_enabled


def test_container_api_override():
    config = KernelConfig(mode=SystemMode.LRP, container_api=True)
    assert config.container_api_enabled
    config = KernelConfig(mode=SystemMode.RC, container_api=False)
    assert not config.container_api_enabled


def test_host_mode_overrides_config_mode():
    config = KernelConfig(mode=SystemMode.UNMODIFIED)
    host = Host(mode=SystemMode.LRP, seed=1, config=config)
    assert host.kernel.config.mode is SystemMode.LRP


def test_softirq_mode_has_no_net_threads():
    host = Host(mode=SystemMode.UNMODIFIED, seed=1)
    host.kernel.spawn_process("p")
    assert not host.kernel.net_threads


def test_lrp_and_rc_modes_create_net_threads():
    for mode in (SystemMode.LRP, SystemMode.RC):
        host = Host(mode=mode, seed=1)
        process = host.kernel.spawn_process("p")
        assert process.pid in host.kernel.net_threads


def test_scheduler_factory_override():
    config = KernelConfig(
        mode=SystemMode.RC,
        scheduler_factory=lambda kernel: LotteryScheduler(
            kernel.sim.rng.fork("lot")
        ),
    )
    host = Host(mode=SystemMode.RC, seed=1, config=config)
    assert isinstance(host.kernel.scheduler, LotteryScheduler)


def test_host_run_argument_validation():
    host = Host(mode=SystemMode.RC, seed=1)
    with pytest.raises(ValueError):
        host.run()
    with pytest.raises(ValueError):
        host.run(seconds=1.0, until_us=5.0)


def test_window_timer_keeps_rolling():
    host = Host(mode=SystemMode.RC, seed=1)
    host.run(seconds=0.1)
    # 10ms windows over 100ms => about 10 rolls.
    assert host.kernel.scheduler.window_rolls >= 9
