"""Cost-model calibration invariants.

These pin the simulation to the paper's measured totals; if a constant
drifts, the experiments stop being a reproduction.
"""

import pytest

from repro.kernel.costs import DEFAULT_COSTS, CostModel


def test_persistent_request_total_matches_paper():
    # 9487 requests/sec at saturation => 105.4 us/request (section 5.3).
    assert DEFAULT_COSTS.request_cost_persistent() == pytest.approx(105.0)


def test_connection_request_total_matches_paper():
    # 2954 requests/sec at saturation => 338.5 us/request (section 5.3).
    assert DEFAULT_COSTS.request_cost_per_connection() == pytest.approx(338.0)


def test_connection_extra_is_difference():
    costs = DEFAULT_COSTS
    assert costs.connection_setup_teardown_cost() == pytest.approx(
        costs.request_cost_per_connection() - costs.request_cost_persistent()
    )


def test_syn_flood_cost_unmodified_near_100us():
    # Collapse "effectively zero at about 10,000 SYNs/sec" needs the
    # full SYN handling cost to be on the order of 1e6/1e4 = 100 us.
    cost = DEFAULT_COSTS.syn_flood_cost_unmodified()
    assert 60.0 <= cost <= 110.0


def test_syn_flood_cost_filtered_matches_fig14_arithmetic():
    # (1 - 0.73) * 1e6 / 70_000 = 3.857 us retained per-SYN cost.
    assert DEFAULT_COSTS.syn_flood_cost_filtered() == pytest.approx(3.9, abs=0.2)


def test_softirq_share_lets_server_beat_fair_share():
    """Fig. 12's misaccounting: the softirq share must be a substantial
    fraction of the per-request cost (the paper's server claims ~2x a
    CGI process's share at n=4)."""
    costs = DEFAULT_COSTS
    share = costs.softirq_share_per_connection_request()
    assert share / costs.request_cost_per_connection() > 0.5


def test_table1_values_match_paper():
    table = DEFAULT_COSTS.container_ops.as_table()
    assert table["create resource container"] == 2.36
    assert table["destroy resource container"] == 2.10
    assert table["change thread's resource binding"] == 1.04
    assert table["obtain container resource usage"] == 2.04
    assert table["set/get container attributes"] == 2.10
    assert table["move container between processes"] == 3.15
    assert table["obtain handle for existing container"] == 1.90


def test_with_overrides_returns_new_model():
    base = CostModel()
    changed = base.with_overrides(proto_syn=10.0)
    assert changed.proto_syn == 10.0
    assert base.proto_syn != 10.0


def test_container_ops_cheaper_than_a_request():
    """Table 1's point: every primitive costs far less than a single
    HTTP transaction, so per-request container use is near-free."""
    costs = DEFAULT_COSTS
    for value in costs.container_ops.as_table().values():
        assert value < costs.request_cost_persistent() / 10.0
