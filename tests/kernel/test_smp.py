"""Multiprocessor dispatch (the section-2 SMP variant).

The paper's experiments are uniprocessor; these tests cover the SMP
extension: parallel capacity, no double-dispatch, interrupt affinity to
core 0, and fixed shares holding machine-wide.
"""

import pytest

from repro import Host, SystemMode, fixed_share_attrs
from repro.kernel.kernel import KernelConfig
from repro.syscall import api


def smp_host(n_cpus: int, seed: int = 81) -> Host:
    config = KernelConfig(mode=SystemMode.RC, n_cpus=n_cpus)
    return Host(mode=SystemMode.RC, seed=seed, config=config)


def spin():
    while True:
        yield api.Compute(10_000.0)


def test_n_cpus_validated():
    with pytest.raises(ValueError):
        smp_host(0)


def test_two_cpus_double_aggregate_capacity():
    done = {}

    def worker(tag):
        def body():
            for _ in range(1000):
                yield api.Compute(1_000.0)
                done[tag] = done.get(tag, 0) + 1

        return body

    results = {}
    for n_cpus in (1, 2):
        done.clear()
        host = smp_host(n_cpus)
        host.kernel.spawn_process("a", worker("a"))
        host.kernel.spawn_process("b", worker("b"))
        host.run(seconds=0.5)
        results[n_cpus] = sum(done.values())
    assert results[2] == pytest.approx(2 * results[1], rel=0.05)


def test_single_thread_cannot_use_two_cpus():
    """One runnable entity occupies one core; the other idles."""
    host = smp_host(2)
    host.kernel.spawn_process("solo", spin)
    host.run(seconds=0.5)
    acct = host.kernel.cpu.accounting
    # Busy time ~= elapsed (one core's worth), not 2x.
    assert acct.total_cpu_us == pytest.approx(host.now, rel=0.02)
    assert host.kernel.cpu.idle_time(host.now) == pytest.approx(
        host.now, rel=0.02
    )


def test_no_entity_runs_on_two_cores_at_once():
    """CPU-time conservation per entity: a single thread can never
    accumulate more than elapsed wall time."""
    host = smp_host(4)
    process = host.kernel.spawn_process("solo", spin)
    host.run(seconds=0.3)
    usage = process.default_container.usage.cpu_us
    assert usage <= host.now * 1.001


def test_fixed_shares_hold_machine_wide():
    host = smp_host(2)
    shares = {"big": 0.75, "small": 0.25}
    containers = {}
    for name, share in shares.items():
        containers[name] = host.kernel.containers.create(
            name, attrs=fixed_share_attrs(share)
        )
        # Two spinners per group so both cores always have work.
        for index in range(2):
            host.kernel.spawn_process(
                f"{name}-{index}", spin, parent_container=containers[name]
            )
    host.run(seconds=1.0)
    from repro.core.hierarchy import subtree_usage

    total = host.now * 2  # two cores
    for name, share in shares.items():
        observed = subtree_usage(containers[name]).cpu_us / total
        assert observed == pytest.approx(share, abs=0.05), name


def test_interrupts_go_to_core_zero_only():
    from repro.kernel.cpu import InterruptJob

    host = smp_host(2)
    host.kernel.spawn_process("a", spin)
    host.kernel.spawn_process("b", spin)
    host.run(until_us=5_000.0)
    host.kernel.cpu.post_hard_interrupt(
        InterruptJob(cost_us=100.0, action=lambda: None)
    )
    host.run(until_us=10_000.0)
    assert host.kernel.cpu.accounting.interrupt_cpu_us == pytest.approx(100.0)


def test_smp_server_scales_throughput():
    """A thread-pool server on two CPUs beats the same server on one."""
    from repro.apps.httpserver import MultiThreadedServer
    from repro.apps.webclient import HttpClient
    from repro.net.packet import ip_addr

    results = {}
    for n_cpus in (1, 2):
        host = smp_host(n_cpus, seed=83)
        host.kernel.fs.add_file("/index.html", 1024)
        host.kernel.fs.warm("/index.html")
        MultiThreadedServer(host.kernel, n_threads=8).install()
        clients = [
            HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
            for i in range(40)
        ]
        for index, client in enumerate(clients):
            client.start(at_us=2_000.0 + index * 100.0)
        host.run(seconds=1.0)
        results[n_cpus] = sum(c.stats_completed for c in clients)
    # Not a perfect 2x (interrupts and the accept path serialize on
    # core 0), but clearly parallel.
    assert results[2] > 1.5 * results[1]
