"""Per-process event queue: priority ordering, dedup, declarations."""

import pytest

from repro.kernel.events import ProcessEventQueue
from repro.syscall.api import IOEvent


@pytest.fixture
def evq():
    queue = ProcessEventQueue("test")
    for fd in range(10):
        queue.declare(fd)
    return queue


def test_priority_ordering(evq):
    evq.post(IOEvent("readable", 1, priority=1))
    evq.post(IOEvent("readable", 2, priority=9))
    evq.post(IOEvent("readable", 3, priority=4))
    order = [evq.pop().fd for _ in range(3)]
    assert order == [2, 3, 1]


def test_fifo_within_priority(evq):
    evq.post(IOEvent("readable", 1, priority=5))
    evq.post(IOEvent("readable", 2, priority=5))
    assert evq.pop().fd == 1
    assert evq.pop().fd == 2


def test_dedup_suppresses_duplicate_readiness(evq):
    assert evq.post(IOEvent("readable", 1, priority=5))
    assert not evq.post(IOEvent("readable", 1, priority=5))
    assert evq.stats_suppressed == 1
    evq.pop()
    # After draining, the key is free again.
    assert evq.post(IOEvent("readable", 1, priority=5))


def test_undeclared_fd_suppressed(evq):
    assert not evq.post(IOEvent("readable", 99, priority=5))


def test_syn_dropped_bypasses_declaration_check(evq):
    # syn_dropped events are notifications, not fd readiness.
    assert evq.post(IOEvent("syn_dropped", 99, data=123), dedup=False)
    event = evq.pop()
    assert event.kind == "syn_dropped"
    assert event.data == 123


def test_retract_stops_future_events(evq):
    evq.retract(1)
    assert not evq.post(IOEvent("readable", 1, priority=5))


def test_pop_empty_returns_none(evq):
    assert evq.pop() is None


def test_len_tracks_pending(evq):
    evq.post(IOEvent("readable", 1, priority=5))
    evq.post(IOEvent("acceptable", 2, priority=5))
    assert len(evq) == 2
    evq.pop()
    assert len(evq) == 1
