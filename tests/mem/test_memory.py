"""Per-container memory accounting and limits."""

import pytest

from repro.core.attributes import ContainerAttributes, SchedClass
from repro.core.operations import ContainerManager
from repro.mem.physmem import MemoryAccountant


@pytest.fixture
def setup():
    manager = ContainerManager()
    accountant = MemoryAccountant(capacity_bytes=10_000)
    return manager, accountant


def test_charge_and_uncharge(setup):
    manager, accountant = setup
    c = manager.create("c")
    assert accountant.try_charge(c, 500, "socket_buffer")
    assert c.usage.memory_bytes == 500
    assert accountant.charged_bytes == 500
    accountant.uncharge(c, 500, "socket_buffer")
    assert c.usage.memory_bytes == 0
    assert accountant.charged_bytes == 0


def test_container_limit_denies(setup):
    manager, accountant = setup
    c = manager.create(
        "c", attrs=ContainerAttributes(memory_limit_bytes=1000)
    )
    assert accountant.try_charge(c, 800)
    assert not accountant.try_charge(c, 300)
    assert accountant.stats_denied == 1
    assert c.usage.memory_bytes == 800


def test_parent_limit_constrains_children(setup):
    manager, accountant = setup
    parent = manager.create(
        "p",
        attrs=ContainerAttributes(
            sched_class=SchedClass.FIXED_SHARE,
            fixed_share=0.5,
            memory_limit_bytes=1000,
        ),
    )
    a = manager.create("a", parent=parent)
    b = manager.create("b", parent=parent)
    assert accountant.try_charge(a, 700)
    assert not accountant.try_charge(b, 500)  # subtree total would be 1200
    assert accountant.try_charge(b, 300)


def test_system_capacity_bound(setup):
    manager, accountant = setup
    c = manager.create("c")
    assert accountant.try_charge(c, 9_000)
    assert not accountant.try_charge(c, 2_000)


def test_none_container_charges_system_pool(setup):
    _manager, accountant = setup
    assert accountant.try_charge(None, 100)
    assert accountant.charged_bytes == 100
    accountant.uncharge(None, 100)
    assert accountant.charged_bytes == 0


def test_negative_sizes_rejected(setup):
    manager, accountant = setup
    c = manager.create("c")
    with pytest.raises(ValueError):
        accountant.try_charge(c, -1)
    with pytest.raises(ValueError):
        accountant.uncharge(c, -1)


def test_over_uncharge_detected(setup):
    manager, accountant = setup
    c = manager.create("c")
    accountant.try_charge(c, 10)
    with pytest.raises(ValueError):
        accountant.uncharge(c, 20)


def test_container_over_uncharge_raises(setup):
    """Uncharging more than a *container's* ledger holds must raise,
    exactly like over-uncharging the system pool."""
    manager, accountant = setup
    a = manager.create("a")
    b = manager.create("b")
    accountant.try_charge(a, 100)
    accountant.try_charge(b, 100)
    # System pool holds 200, but container a only holds 100.
    with pytest.raises(ValueError):
        accountant.uncharge(a, 150)


def test_over_uncharge_leaves_no_partial_mutation(setup):
    """The guard pre-validates the whole ancestor chain: a refused
    uncharge must leave every ledger and the pool untouched."""
    manager, accountant = setup
    parent = manager.create(
        "p",
        attrs=ContainerAttributes(
            sched_class=SchedClass.FIXED_SHARE, fixed_share=0.5
        ),
    )
    child = manager.create("c", parent=parent)
    accountant.try_charge(child, 100, "buffer_cache")
    # Inflate the parent's ledger so the failure point is the *child*:
    # a top-down walk that mutated ancestors first would corrupt p.
    accountant.try_charge(parent, 50, "buffer_cache")
    with pytest.raises(ValueError):
        accountant.uncharge(child, 120, "buffer_cache")
    assert child.usage.memory_bytes == 100
    assert parent.usage.memory_bytes == 150  # own 50 + child 100
    assert accountant.charged_bytes == 150
    assert accountant.by_kind["buffer_cache"] == 150


def test_by_kind_tracking(setup):
    manager, accountant = setup
    c = manager.create("c")
    accountant.try_charge(c, 100, "socket_buffer")
    accountant.try_charge(c, 50, "pcb")
    assert accountant.by_kind["socket_buffer"] == 100
    assert accountant.by_kind["pcb"] == 50
