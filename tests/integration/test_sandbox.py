"""Integration: hierarchical caps and shares end to end."""

import pytest

from repro import Host, SystemMode, fixed_share_attrs, timeshare_attrs
from repro.syscall import api


def spin():
    while True:
        yield api.Compute(5_000.0)


@pytest.fixture
def host():
    return Host(mode=SystemMode.RC, seed=63)


def test_hard_cap_enforced_for_cpu_hog(host):
    capped = host.kernel.containers.create(
        "capped", attrs=fixed_share_attrs(0.2, cpu_limit=0.2)
    )
    host.kernel.spawn_process("hog", spin, parent_container=capped)
    host.run(seconds=2.0)
    from repro.core.hierarchy import subtree_usage

    share = subtree_usage(capped).cpu_us / host.now
    assert share == pytest.approx(0.2, abs=0.01)


def test_cap_is_not_a_guarantee_when_idle(host):
    """An uncontended capped container simply uses up to its cap; the
    rest of the machine stays idle (non-work-conserving by design)."""
    capped = host.kernel.containers.create(
        "capped", attrs=fixed_share_attrs(0.3, cpu_limit=0.3)
    )
    host.kernel.spawn_process("hog", spin, parent_container=capped)
    host.run(seconds=1.0)
    acct = host.kernel.cpu.accounting
    assert acct.utilization(host.now) == pytest.approx(0.3, abs=0.02)


def test_fixed_shares_split_exactly_under_saturation(host):
    shares = {"a": 0.6, "b": 0.4}
    roots = {}
    for name, share in shares.items():
        roots[name] = host.kernel.containers.create(
            name, attrs=fixed_share_attrs(share)
        )
        host.kernel.spawn_process(f"hog-{name}", spin, parent_container=roots[name])
    host.run(seconds=2.0)
    from repro.core.hierarchy import subtree_usage

    for name, share in shares.items():
        observed = subtree_usage(roots[name]).cpu_us / host.now
        assert observed == pytest.approx(share, abs=0.02), name


def test_nested_cap_tighter_than_parent(host):
    outer = host.kernel.containers.create(
        "outer", attrs=fixed_share_attrs(0.5, cpu_limit=0.5)
    )
    inner = host.kernel.containers.create(
        "inner", attrs=fixed_share_attrs(0.1, cpu_limit=0.1), parent=outer
    )
    host.kernel.spawn_process("hog", spin, parent_container=inner)
    host.run(seconds=2.0)
    from repro.core.hierarchy import subtree_usage

    assert subtree_usage(inner).cpu_us / host.now == pytest.approx(0.1, abs=0.01)


def test_timeshare_children_split_parent_share(host):
    parent = host.kernel.containers.create(
        "parent", attrs=fixed_share_attrs(0.6)
    )
    procs = [
        host.kernel.spawn_process(f"kid{i}", spin, parent_container=parent)
        for i in range(3)
    ]
    # A competitor keeps the parent at exactly its share.
    other = host.kernel.containers.create("other", attrs=fixed_share_attrs(0.4))
    host.kernel.spawn_process("rival", spin, parent_container=other)
    host.run(seconds=2.0)
    kid_usage = [p.default_container.usage.cpu_us for p in procs]
    total = sum(kid_usage)
    assert total / host.now == pytest.approx(0.6, abs=0.03)
    for usage in kid_usage:
        assert usage / total == pytest.approx(1 / 3, abs=0.05)
