"""Regression tests for bugs found (and fixed) during development.

Each test documents a real failure mode; if one of these breaks again,
the corresponding figure quietly bends long before any other test
notices.
"""

import pytest

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import CgiPolicy, EventDrivenServer
from repro.apps.webclient import HttpClient


def test_event_api_no_lost_readiness_on_accept_race():
    """BUG: request data arriving before accept() produced no
    'readable' event (the fd was not yet declared), stalling the
    connection until the client timed out.  FIX: level-triggered check
    at EventDeclare time.

    Symptom to guard: eventapi throughput far below select's."""
    rates = {}
    for event_api in ("select", "eventapi"):
        host = Host(mode=SystemMode.RC, seed=111)
        host.kernel.fs.add_file("/index.html", 1024)
        host.kernel.fs.warm("/index.html")
        EventDrivenServer(
            host.kernel, use_containers=True, event_api=event_api
        ).install()
        clients = [
            HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
            for i in range(20)
        ]
        for index, client in enumerate(clients):
            client.start(at_us=2_000.0 + index * 100.0)
        host.run(seconds=0.5)
        rates[event_api] = sum(c.stats_completed for c in clients)
    assert rates["eventapi"] > 0.9 * rates["select"]


def test_server_thread_not_starved_after_cgi_dispatch():
    """BUG: after briefly charging a capped CGI container, the server
    thread's cumulative virtual time made it lose to CGI threads inside
    the capped group forever; static throughput went to zero.  FIX:
    least-recently-ran round-robin within groups."""
    host = Host(mode=SystemMode.RC, seed=112)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(
        host.kernel,
        use_containers=True,
        cgi=CgiPolicy(cpu_us=2_000_000.0, cpu_limit=0.3),
    )
    server.install()
    static = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"s{i}")
        for i in range(10)
    ]
    for index, client in enumerate(static):
        client.start(at_us=2_000.0 + index * 100.0)
    for index in range(4):
        HttpClient(
            host.kernel, ip_addr(10, 0, 1, index + 1), f"g{index}",
            path="/cgi/app", timeout_us=120_000_000.0,
        ).start(at_us=10_000.0 + index * 500.0)
    host.run(seconds=2.0)
    # Static service continues at a healthy rate despite 4 saturating
    # CGI requests in a capped sandbox.
    assert sum(c.stats_completed for c in static) > 1_500


def test_priority_zero_queue_not_drained_via_head_stickiness():
    """BUG: the netthread's tentatively-selected head packet stuck even
    before processing started, so every good-traffic wakeup first burnt
    ~80us on a priority-zero (blackhole) packet.  FIX: un-started heads
    yield to higher-priority arrivals."""
    from repro.apps.httpserver import ListenSpec, SynFloodDefense
    from repro.apps.synflood import SynFlooder

    host = Host(mode=SystemMode.RC, seed=113)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(
        host.kernel,
        specs=[ListenSpec("default", notify_syn_drop=True)],
        use_containers=True,
        event_api="eventapi",
        defense=SynFloodDefense(threshold=3),
    )
    server.install()
    clients = [
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}",
            timeout_us=400_000.0,
        )
        for i in range(25)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + index * 100.0)
    SynFlooder(
        host.kernel, rate_per_sec=30_000.0, batch=10,
        rng=host.sim.rng.fork("flood"),
    ).start(at_us=100_000.0)
    host.run(seconds=3.0)
    blackhole = [
        c
        for c in host.kernel.containers.all_containers()
        if c.name.startswith("blackhole")
    ]
    assert blackhole
    # The blackhole's CPU is bounded by its cap (plus slack), far from
    # the ~40% the sticky-head bug produced.
    assert blackhole[0].usage.cpu_us < 0.06 * host.now


def test_scheduler_pick_has_no_object_id_dependence():
    """BUG: pick() broke ties on id(entity) -- memory addresses -- so
    identical runs could diverge.  FIX: attach-order tie-breaking.
    Guard: two fresh hosts with the same seed replay identically."""

    def digest():
        host = Host(mode=SystemMode.RC, seed=114)
        host.kernel.fs.add_file("/index.html", 1024)
        host.kernel.fs.warm("/index.html")
        EventDrivenServer(host.kernel, use_containers=True).install()
        clients = [
            HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
            for i in range(6)
        ]
        for index, client in enumerate(clients):
            client.start(at_us=2_000.0 + index * 97.0)
        host.run(seconds=0.3)
        return (
            host.sim.events_dispatched,
            tuple(c.stats_completed for c in clients),
        )

    assert digest() == digest()


def test_idle_group_cannot_monopolise_on_wakeup():
    """BUG RISK: stride passes of long-idle groups lag the pack; on
    wake-up such a group would run exclusively while 'catching up'.
    FIX: pass clamping to the global virtual time at pick."""
    from repro import fixed_share_attrs
    from repro.syscall import api

    host = Host(mode=SystemMode.RC, seed=115)

    def spin():
        while True:
            yield api.Compute(5_000.0)

    steady_root = host.kernel.containers.create(
        "steady", attrs=fixed_share_attrs(0.5)
    )
    host.kernel.spawn_process("steady", spin, parent_container=steady_root)
    host.run(seconds=1.0)  # sleeper group idle this whole time

    sleeper_root = host.kernel.containers.create(
        "sleeper", attrs=fixed_share_attrs(0.5)
    )
    sleeper = host.kernel.spawn_process(
        "sleeper", spin, parent_container=sleeper_root
    )
    mark = host.kernel.containers.root.children  # noqa: F841
    steady_before = steady_root.window_usage_us  # noqa: F841
    from repro.core.hierarchy import subtree_usage

    steady_cpu_before = subtree_usage(steady_root).cpu_us
    host.run(until_us=host.now + 0.5e6)
    steady_gain = subtree_usage(steady_root).cpu_us - steady_cpu_before
    # The steady group kept roughly its half share during the window
    # right after the sleeper woke (no catch-up monopoly).
    assert steady_gain > 0.35 * 0.5e6
