"""End-to-end: one real Figure 11 grid point runs clean under the
charging-conservation sanitizer and produces the identical result."""

import pytest

from repro.analysis import sanitizer
from repro.experiments.fig11_priority import _run_point

POINT = dict(config="eventapi", n_low=4, warmup_s=0.1, measure_s=0.3, seed=11)


@pytest.fixture(autouse=True)
def _fresh_registry():
    sanitizer.drain_installed()
    yield
    sanitizer.drain_installed()


def test_fig11_point_conserves_and_stays_byte_identical(monkeypatch):
    plain = _run_point(**POINT)
    assert sanitizer.installed() == []

    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "1")
    sanitized = _run_point(**POINT)
    checkers = sanitizer.drain_installed()

    # The point runner built at least one host, and the sanitizer
    # actually watched its dispatcher.
    assert checkers, "sanitized run installed no sanitizer"
    for checker in checkers:
        assert checker.slices_checked > 0
        violations = checker.finish()
        assert violations == [], "\n".join(
            v.render() for v in violations
        )

    # Observational only: the figure value is bit-for-bit unchanged.
    assert sanitized == plain


def test_fig11_point_other_config_conserves(monkeypatch):
    """The unmodified-kernel configuration exercises the softirq path
    (unaccounted interrupt CPU) -- conservation must hold there too."""
    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "1")
    _run_point(config="nocontainers", n_low=4, warmup_s=0.1,
               measure_s=0.3, seed=11)
    checkers = sanitizer.drain_installed()
    assert checkers
    for checker in checkers:
        assert checker.finish() == []
        assert checker._unaccounted_us >= 0.0
