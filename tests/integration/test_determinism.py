"""Whole-system determinism: identical seeds, identical histories."""

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import CgiPolicy, EventDrivenServer
from repro.apps.synflood import SynFlooder
from repro.apps.webclient import HttpClient


def run_scenario(seed: int) -> tuple:
    """A busy mixed scenario; returns a digest of observable history."""
    host = Host(mode=SystemMode.RC, seed=seed)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(
        host.kernel,
        use_containers=True,
        cgi=CgiPolicy(cpu_us=50_000.0, cpu_limit=0.3),
        event_api="select",
    )
    server.install()
    clients = [
        HttpClient(
            host.kernel,
            ip_addr(10, 0, 0, i + 1),
            f"c{i}",
            think_time_us=500.0,
            rng=host.sim.rng.fork(f"c{i}"),  # seed-dependent timing
        )
        for i in range(8)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + index * 137.0)
    cgi_client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "cgi", path="/cgi/x",
        timeout_us=60_000_000.0,
    )
    cgi_client.start(at_us=9_000.0)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=5_000.0, batch=5,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=100_000.0)
    host.run(seconds=1.0)
    return (
        tuple(c.stats_completed for c in clients),
        tuple(round(c.mean_latency_ms(), 6) for c in clients),
        cgi_client.stats_completed,
        server.stats.static_served,
        server.stats.connections_accepted,
        round(host.kernel.cpu.accounting.total_cpu_us, 3),
        host.sim.events_dispatched,
    )


def test_identical_seeds_identical_histories():
    assert run_scenario(777) == run_scenario(777)


def test_different_seeds_diverge():
    # The flood RNG differs, so histories should not be identical.
    assert run_scenario(1) != run_scenario(2)
