"""End-to-end priority behaviour (the Fig. 11 mechanism)."""

import pytest

from repro import AddrFilter, Host, SystemMode, ip_addr
from repro.apps.httpserver import EventDrivenServer, ListenSpec
from repro.apps.webclient import HttpClient

PREMIUM = ip_addr(10, 9, 9, 9)


def build(mode, event_api="select"):
    host = Host(mode=mode, seed=67)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    if mode is SystemMode.RC:
        specs = [
            ListenSpec(
                "premium",
                addr_filter=AddrFilter(template=PREMIUM, prefix_len=32),
                priority=10,
            ),
            ListenSpec("default", priority=1),
        ]
        server = EventDrivenServer(
            host.kernel, specs=specs, use_containers=True, event_api=event_api
        )
    else:
        server = EventDrivenServer(
            host.kernel,
            use_containers=False,
            classifier=lambda addr: 10 if addr == PREMIUM else 1,
        )
    server.install()
    return host, server


def drive(host, n_low=25, seconds=1.5):
    premium = HttpClient(
        host.kernel, PREMIUM, "premium", think_time_us=2_000.0,
        rng=host.sim.rng.fork("premium"),
    )
    premium.start(at_us=2_500.0)
    low = [
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"low{i}",
            think_time_us=2_000.0, rng=host.sim.rng.fork(f"low{i}"),
        )
        for i in range(n_low)
    ]
    for index, client in enumerate(low):
        client.start(at_us=3_000.0 + index * 100.0)
    host.run(seconds=seconds)
    return premium, low


def test_premium_latency_insulated_with_containers():
    host, _server = build(SystemMode.RC)
    premium, _low = drive(host)
    assert premium.mean_latency_ms() < 2.5


def test_premium_latency_suffers_without_containers():
    host, _server = build(SystemMode.UNMODIFIED)
    premium, _low = drive(host)
    assert premium.mean_latency_ms() > 3.0


def test_low_priority_clients_not_starved():
    """Priority layering is strict, but the premium client is mostly
    idle (closed loop with think time), so low-priority work proceeds."""
    host, _server = build(SystemMode.RC)
    _premium, low = drive(host)
    assert sum(c.stats_completed for c in low) > 500


def test_premium_served_by_premium_class_container():
    host, _server = build(SystemMode.RC)
    premium, _low = drive(host, n_low=3)
    class_containers = {
        c.name: c
        for c in host.kernel.containers.all_containers()
        if ":class:" in c.name
    }
    premium_cpu = class_containers["httpd:class:premium"].usage.cpu_us
    default_cpu = class_containers["httpd:class:default"].usage.cpu_us
    assert premium_cpu > 0
    assert default_cpu > premium_cpu  # 3 low clients vs 1 premium


def test_event_api_delivers_premium_first():
    host, _server = build(SystemMode.RC, event_api="eventapi")
    premium, _low = drive(host)
    assert premium.mean_latency_ms() < 2.0
