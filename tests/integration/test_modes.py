"""Cross-mode integration: the three systems' defining differences."""

import pytest

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import EventDrivenServer
from repro.apps.webclient import HttpClient


def serve_for(mode: SystemMode, seconds: float = 1.0, clients: int = 15):
    host = Host(mode=mode, seed=61)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(
        host.kernel, use_containers=(mode is SystemMode.RC)
    )
    server.install()
    fleet = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
        for i in range(clients)
    ]
    for index, client in enumerate(fleet):
        client.start(at_us=2_000.0 + index * 100.0)
    host.run(seconds=seconds)
    return host, server, fleet


def test_all_modes_serve_comparable_throughput():
    rates = {}
    for mode in SystemMode:
        _host, server, fleet = serve_for(mode)
        rates[mode] = sum(c.stats_completed for c in fleet)
    # All three within 15% of each other (the paper's "effectively
    # unchanged" claim, section 5.4).
    low, high = min(rates.values()), max(rates.values())
    assert low > 0.85 * high, rates


def test_unmodified_mode_has_unaccounted_network_cpu():
    host, _server, _fleet = serve_for(SystemMode.UNMODIFIED)
    acct = host.kernel.cpu.accounting
    # Most protocol work went to nobody: the paper's core complaint.
    assert acct.unaccounted_cpu_us > 0.4 * acct.total_cpu_us


def test_lrp_charges_network_to_process():
    host, server, _fleet = serve_for(SystemMode.LRP)
    acct = host.kernel.cpu.accounting
    # Only raw hardware interrupts remain unaccounted.
    assert acct.unaccounted_cpu_us < 0.1 * acct.total_cpu_us
    default = server.process.default_container
    assert default.usage.cpu_network_us > 0


def test_rc_charges_network_to_class_container():
    host, _server, _fleet = serve_for(SystemMode.RC)
    class_container = next(
        c
        for c in host.kernel.containers.all_containers()
        if "class:default" in c.name
    )
    assert class_container.usage.cpu_network_us > 0
    acct = host.kernel.cpu.accounting
    assert acct.unaccounted_cpu_us < 0.1 * acct.total_cpu_us


def test_unmodified_accounted_share_smaller_than_real():
    """Fig. 12's misaccounting, as a direct accounting assertion: in
    the unmodified mode the server's charged CPU misses the softirq
    share of each request (about 60% of 338us)."""
    host, server, fleet = serve_for(SystemMode.UNMODIFIED)
    served = sum(c.stats_completed for c in fleet)
    charged = server.process.default_container.usage.cpu_us
    real_estimate = served * host.kernel.costs.request_cost_per_connection()
    assert charged < 0.55 * real_estimate
