"""Trace bus subscription and recording."""

from repro.sim.tracing import TraceBus


def test_inactive_bus_drops_records():
    bus = TraceBus()
    bus.publish(1.0, "net.drop", reason="test")  # must not raise
    assert not bus.active


def test_exact_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("net.drop", seen.append)
    bus.publish(1.0, "net.drop", reason="x")
    bus.publish(2.0, "sched.pick")
    assert len(seen) == 1
    assert seen[0].data["reason"] == "x"


def test_prefix_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("net", seen.append)
    bus.publish(1.0, "net.drop")
    bus.publish(2.0, "net.enqueue")
    bus.publish(3.0, "sched.pick")
    assert [r.category for r in seen] == ["net.drop", "net.enqueue"]


def test_wildcard_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("*", seen.append)
    bus.publish(1.0, "a")
    bus.publish(2.0, "b.c")
    assert len(seen) == 2


def test_recording_filters_by_category():
    bus = TraceBus()
    captured = bus.record(categories=["sched"])
    bus.publish(1.0, "sched.pick", entity="t1")
    bus.publish(2.0, "net.drop")
    records = bus.stop_recording()
    assert records is captured
    assert [r.category for r in records] == ["sched.pick"]


def test_recording_all():
    bus = TraceBus()
    bus.record()
    bus.publish(1.0, "anything")
    assert len(bus.stop_recording()) == 1


def test_stop_recording_without_start():
    bus = TraceBus()
    assert bus.stop_recording() == []


def test_publish_memoizes_matched_handlers():
    bus = TraceBus()
    seen = []
    bus.subscribe("net", seen.append)
    bus.publish(1.0, "net.drop")
    assert "net.drop" in bus._match_cache
    assert bus._match_cache["net.drop"] == (seen.append,)
    # Non-matching categories memoize an empty handler tuple too.
    bus.publish(2.0, "sched.pick")
    assert bus._match_cache["sched.pick"] == ()
    assert [r.category for r in seen] == ["net.drop"]


def test_subscribe_invalidates_match_cache():
    bus = TraceBus()
    first, second = [], []
    bus.subscribe("net", first.append)
    bus.publish(1.0, "net.drop")  # memoizes net.drop -> (first.append,)
    bus.subscribe("net.drop", second.append)
    bus.publish(2.0, "net.drop")
    assert len(first) == 2
    assert len(second) == 1  # the late subscriber sees post-subscribe records


def test_memoized_dispatch_preserves_subscription_order():
    bus = TraceBus()
    order = []
    bus.subscribe("net", lambda r: order.append("prefix"))
    bus.subscribe("*", lambda r: order.append("wildcard"))
    bus.subscribe("net.drop", lambda r: order.append("exact"))
    bus.publish(1.0, "net.drop")
    bus.publish(2.0, "net.drop")  # second publish runs through the memo
    assert order == ["prefix", "wildcard", "exact"] * 2


def test_subscribe_during_publish_is_safe_and_takes_effect_next_publish():
    """A handler may subscribe new handlers mid-publish.

    The in-flight dispatch iterates a memoized tuple snapshot, so the
    mutation must neither raise nor deliver the current record to the
    new subscriber -- but the very next publish must reach it (the
    subscribe invalidated the memo even though a publish was live).
    """
    bus = TraceBus()
    late = []

    def self_extending(record):
        if not late:  # subscribe exactly once, from inside dispatch
            bus.subscribe("net", late.append)
            late.append(None)  # sentinel: subscription happened

    bus.subscribe("net", self_extending)
    bus.publish(1.0, "net.drop")  # triggers the mid-publish subscribe
    assert late == [None]  # current record NOT delivered to late sub
    bus.publish(2.0, "net.drop")
    assert len(late) == 2  # next record IS delivered
    assert late[1].time == 2.0


def test_subscribe_same_category_during_publish_does_not_mutate_live_tuple():
    """The memoized handler tuple must be a snapshot, not an alias of
    the live subscriber list: appending to `_subscribers[key]` from a
    handler must not grow the sequence publish() is iterating."""
    bus = TraceBus()
    calls = []

    def handler_a(record):
        calls.append("a")
        # Appends to the same subscription key mid-dispatch.
        bus.subscribe("x", lambda r: calls.append("b"))

    bus.subscribe("x", handler_a)
    bus.publish(1.0, "x")
    # Exactly one call: handler_b must not run for the record that was
    # in flight when it subscribed.
    assert calls == ["a"]
    bus.publish(2.0, "x")
    assert calls == ["a", "a", "b"]


def test_recording_category_match_is_memoized_and_reset():
    bus = TraceBus()
    bus.record(categories=["sched"])
    bus.publish(1.0, "sched.pick")
    bus.publish(2.0, "net.drop")
    assert bus._record_match_cache == {"sched.pick": True, "net.drop": False}
    records = bus.stop_recording()
    assert [r.category for r in records] == ["sched.pick"]
    # A new recording with different categories must not reuse the memo.
    bus.record(categories=["net"])
    bus.publish(3.0, "net.drop")
    assert [r.category for r in bus.stop_recording()] == ["net.drop"]
