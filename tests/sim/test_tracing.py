"""Trace bus subscription and recording."""

from repro.sim.tracing import TraceBus


def test_inactive_bus_drops_records():
    bus = TraceBus()
    bus.publish(1.0, "net.drop", reason="test")  # must not raise
    assert not bus.active


def test_exact_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("net.drop", seen.append)
    bus.publish(1.0, "net.drop", reason="x")
    bus.publish(2.0, "sched.pick")
    assert len(seen) == 1
    assert seen[0].data["reason"] == "x"


def test_prefix_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("net", seen.append)
    bus.publish(1.0, "net.drop")
    bus.publish(2.0, "net.enqueue")
    bus.publish(3.0, "sched.pick")
    assert [r.category for r in seen] == ["net.drop", "net.enqueue"]


def test_wildcard_subscription():
    bus = TraceBus()
    seen = []
    bus.subscribe("*", seen.append)
    bus.publish(1.0, "a")
    bus.publish(2.0, "b.c")
    assert len(seen) == 2


def test_recording_filters_by_category():
    bus = TraceBus()
    captured = bus.record(categories=["sched"])
    bus.publish(1.0, "sched.pick", entity="t1")
    bus.publish(2.0, "net.drop")
    records = bus.stop_recording()
    assert records is captured
    assert [r.category for r in records] == ["sched.pick"]


def test_recording_all():
    bus = TraceBus()
    bus.record()
    bus.publish(1.0, "anything")
    assert len(bus.stop_recording()) == 1


def test_stop_recording_without_start():
    bus = TraceBus()
    assert bus.stop_recording() == []
