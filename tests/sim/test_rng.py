"""Deterministic RNG behaviour."""

from repro.sim.rng import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(7)
    b = SeededRng(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRng(1)
    b = SeededRng(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_forks_are_reproducible():
    a = SeededRng(7).fork("net")
    b = SeededRng(7).fork("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_forks_are_independent_of_parent_consumption():
    parent1 = SeededRng(7)
    child1 = parent1.fork("x")
    parent2 = SeededRng(7)
    parent2.random()  # consuming the parent must not perturb the child
    child2 = parent2.fork("x")
    assert [child1.random() for _ in range(5)] == [
        child2.random() for _ in range(5)
    ]


def test_fork_names_differ():
    parent = SeededRng(7)
    a = parent.fork("a")
    b = parent.fork("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_randint_bounds():
    rng = SeededRng(3)
    values = [rng.randint(1, 6) for _ in range(200)]
    assert min(values) >= 1
    assert max(values) <= 6


def test_uniform_bounds():
    rng = SeededRng(3)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_choice_and_shuffle_deterministic():
    rng1 = SeededRng(5)
    rng2 = SeededRng(5)
    items1 = list(range(10))
    items2 = list(range(10))
    rng1.shuffle(items1)
    rng2.shuffle(items2)
    assert items1 == items2
    assert rng1.choice("abc") == rng2.choice("abc")
