"""Differential testing: the timing wheel against the reference heap.

The wheel must reproduce the heap's dispatch order bit for bit under any
workload -- same-timestamp bursts, far-future timers, cancel-then-
reschedule churn, scheduling at or before the currently-draining tick.
The fuzz harness drives both implementations with one seeded operation
stream and compares every observable: dispatch order, pending counts,
peek times, and bound-hit behaviour.

The pool-recycling tests pin the generation-guard contract: a recycled
``Event`` handle (its object reused for a later event) must never cancel
its successor when the holder passes the sequence number it recorded.
"""

import random

from repro.sim.events import (
    WHEEL_GRANULARITY_US,
    EventQueue,
    TimingWheelQueue,
    make_event_queue,
)


def _noop() -> None:
    pass


def _drain(queue):
    """Pop everything, returning the observable (when, seq, args) stream."""
    out = []
    while True:
        event, when = queue.pop_due()
        if event is None:
            break
        out.append((when, event.seq, event.args))
    return out


def _fuzz_round(seed: int, ops: int = 4000) -> None:
    rng = random.Random(seed)
    heap = EventQueue(compact_min_dead=8)
    wheel = TimingWheelQueue(compact_min_dead=8)
    # Parallel handle lists: index i is the same logical event in both.
    handles: list = []
    dispatched_h: list = []
    dispatched_w: list = []
    now = 0.0

    def schedule(when: float) -> None:
        tag = len(handles)
        eh = heap.schedule(when, _noop, tag)
        ew = wheel.schedule(when, _noop, tag)
        assert eh.seq == ew.seq
        handles.append((eh, eh.seq, ew, ew.seq))

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.45:
            # Mixture of horizons: sub-tick, short, overflow-level, far
            # future; occasionally at or before the current drain point.
            horizon = rng.choice(
                (
                    rng.uniform(0.0, WHEEL_GRANULARITY_US),
                    rng.uniform(0.0, 1_000.0),
                    rng.uniform(0.0, 40_000.0),
                    rng.uniform(100_000.0, 9_000_000.0),
                )
            )
            when = now + horizon
            if rng.random() < 0.05:
                when = max(0.0, now - rng.uniform(0.0, 500.0))
            schedule(when)
            if rng.random() < 0.2:
                # Same-timestamp burst: ties broken by sequence.
                for _ in range(rng.randrange(1, 4)):
                    schedule(when)
        elif roll < 0.70 and handles:
            # Cancel (possibly already fired/cancelled) -- then sometimes
            # reschedule, the timer-churn pattern.
            eh, sh, ew, sw = handles[rng.randrange(len(handles))]
            heap.cancel(eh, sh)
            wheel.cancel(ew, sw)
            if rng.random() < 0.5:
                schedule(now + rng.uniform(0.0, 50_000.0))
        elif roll < 0.85:
            assert heap.peek_time() == wheel.peek_time()
            assert len(heap) == len(wheel)
        else:
            # Drain a bounded step; the bound must bite identically.
            until = now + rng.uniform(0.0, 5_000.0)
            while True:
                eh, th = heap.pop_due(until)
                ew, tw = wheel.pop_due(until)
                assert th == tw
                assert (eh is None) == (ew is None)
                if eh is None:
                    break
                assert eh.seq == ew.seq and eh.args == ew.args
                dispatched_h.append((th, eh.seq, eh.args))
                dispatched_w.append((tw, ew.seq, ew.args))
                now = th
            if th is not None:
                now = max(now, until)
    dispatched_h.extend(_drain(heap))
    dispatched_w.extend(_drain(wheel))
    assert dispatched_h == dispatched_w
    assert len(heap) == len(wheel) == 0
    # (The stream is not globally when-sorted: the workload deliberately
    # schedules events at or before the drain point, which both queues
    # must surface immediately -- later in the stream than their stamp.)


def test_fuzz_wheel_matches_heap():
    for seed in range(8):
        _fuzz_round(20990131 + seed)


def test_far_future_cascades_in_order():
    wheel = TimingWheelQueue()
    whens = [9_000_000.0, 13.0, 4_500_000.0, 70_000.0, 9_000_000.0, 64.0]
    for when in whens:
        wheel.schedule(when, _noop, when)
    popped = [when for when, _seq, _args in _drain(wheel)]
    assert popped == sorted(whens)


def test_far_heap_compaction_counts():
    wheel = TimingWheelQueue(compact_min_dead=16)
    keep = wheel.schedule(5.0, _noop)
    doomed = [wheel.schedule(10_000_000.0 + i, _noop) for i in range(40)]
    for event in doomed:
        wheel.cancel(event, event.seq)
    assert wheel.compactions >= 1
    assert len(wheel._far) < 40
    assert wheel.pop() is keep


def test_recycled_handle_cannot_cancel_successor():
    wheel = TimingWheelQueue()
    first = wheel.schedule(1.0, _noop, "first")
    first_seq = first.seq
    event, _ = wheel.pop_due()
    assert event is first
    # The pool reuses the object for the next event.
    second = wheel.schedule(2.0, _noop, "second")
    assert second is first
    # The stale holder's guarded cancel is refused...
    wheel.cancel(first, first_seq)
    assert wheel.stale_cancels == 1
    # ...and the successor still fires.
    event, when = wheel.pop_due()
    assert event is not None and when == 2.0 and event.args == ("second",)


def test_cancelled_handle_is_recycled_and_guarded():
    wheel = TimingWheelQueue()
    first = wheel.schedule(1.0, _noop, "first")
    first_seq = first.seq
    wheel.cancel(first, first_seq)
    second = wheel.schedule(2.0, _noop, "second")
    assert second is first  # recycled on cancel
    # Double-cancel through the stale handle must not kill the successor.
    wheel.cancel(first, first_seq)
    assert wheel.stale_cancels == 1
    assert len(wheel) == 1
    event, when = wheel.pop_due()
    assert event is not None and when == 2.0


def test_pool_reuse_counts():
    wheel = TimingWheelQueue()
    for i in range(10):
        wheel.schedule(float(i), _noop)
    while wheel.pop() is not None:
        pass
    for i in range(10):
        wheel.schedule(float(i), _noop)
    assert wheel.pool_hits == 10


def test_make_event_queue_selects_implementation(monkeypatch):
    monkeypatch.delenv("REPRO_EVENTQUEUE", raising=False)
    assert isinstance(make_event_queue(), TimingWheelQueue)
    assert isinstance(make_event_queue("heap"), EventQueue)
    assert isinstance(make_event_queue("wheel"), TimingWheelQueue)
    monkeypatch.setenv("REPRO_EVENTQUEUE", "heap")
    assert isinstance(make_event_queue(), EventQueue)
    monkeypatch.setenv("REPRO_EVENTQUEUE", "bogus")
    try:
        make_event_queue()
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("bogus queue kind must be rejected")
