"""Property-based tests on the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulation


@given(times=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    sim = Simulation()
    fired = []
    for when in times:
        sim.at(when, lambda w=when: fired.append((sim.now, w)))
    sim.run()
    observed = [now for now, _ in fired]
    assert observed == sorted(observed)
    # Each callback ran exactly at its scheduled time.
    assert all(now == when for now, when in fired)


@given(
    times=st.lists(st.floats(0.0, 1000.0), min_size=2, max_size=40),
    cancel_index=st.integers(0, 39),
)
@settings(max_examples=100, deadline=None)
def test_cancelled_event_never_fires(times, cancel_index):
    sim = Simulation()
    fired = []
    handles = [
        sim.at(when, lambda i=i: fired.append(i)) for i, when in enumerate(times)
    ]
    victim = cancel_index % len(handles)
    sim.cancel(handles[victim])
    sim.run()
    assert victim not in fired
    assert len(fired) == len(times) - 1


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_same_time_events_fire_in_schedule_order(offsets):
    """Ties break by insertion order, the causality guarantee chained
    zero-delay dispatches rely on."""
    sim = Simulation()
    fired = []
    when = 50.0
    for index, _ in enumerate(offsets):
        sim.at(when, lambda i=index: fired.append(i))
    sim.run()
    assert fired == list(range(len(offsets)))


@given(
    horizon=st.floats(1.0, 1e5),
    times=st.lists(st.floats(0.0, 2e5), min_size=0, max_size=30),
)
@settings(max_examples=80, deadline=None)
def test_run_until_respects_horizon(horizon, times):
    sim = Simulation()
    fired = []
    for when in times:
        sim.at(when, lambda w=when: fired.append(w))
    sim.run(until=horizon)
    assert all(when <= horizon for when in fired)
    assert sim.now == horizon or (
        sim.now <= horizon and not times
    ) or sim.now <= horizon


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_engine_replays_identically(seed):
    def history(seed_value):
        sim = Simulation(seed=seed_value)
        rng = sim.rng.fork("load")
        log = []

        def tick(depth):
            log.append(round(sim.now, 9))
            if depth < 20:
                sim.after(rng.uniform(0.1, 10.0), tick, depth + 1)

        sim.at(0.0, tick, 0)
        sim.run()
        return log

    assert history(seed) == history(seed)
