"""Clock invariants."""

import pytest

from repro.sim.clock import MILLISECOND, SECOND, Clock


def test_starts_at_zero_by_default():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(start=5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        Clock(start=-1.0)


def test_advance_forward():
    clock = Clock()
    clock.advance_to(10.5)
    assert clock.now == 10.5


def test_advance_to_same_time_is_allowed():
    clock = Clock(start=3.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_backwards_rejected():
    clock = Clock(start=10.0)
    with pytest.raises(ValueError):
        clock.advance_to(9.999)


def test_seconds_conversion():
    clock = Clock(start=2_500_000.0)
    assert clock.seconds() == pytest.approx(2.5)


def test_unit_constants():
    assert MILLISECOND == 1_000.0
    assert SECOND == 1_000_000.0
