"""Differential testing of the batched dispatch loop.

``Simulation.run`` delegates the per-event loop to the queue's
``dispatch_batch``, so the two implementations now own the hottest
engine code.  These tests drive *whole simulations* -- not bare queues
-- through identical seeded workloads under ``queue="heap"`` and
``queue="wheel"`` and require every observable to match: the dispatched
``(time, tag)`` stream, the clock after every bounded run segment, and
the dispatch tally.  Callbacks schedule, cancel, and stop mid-batch,
which is exactly where the batch loop's aliasing is dangerous (a cancel
inside a callback can trigger heap compaction, which rebinds the
backing list).
"""

import random

from repro.sim.engine import Simulation


def _run_segmented(kind: str, seed: int):
    """One seeded workload against one queue kind; returns observables."""
    rng = random.Random(seed)
    sim = Simulation(queue=kind)
    log = []
    pending = []

    def cb(tag) -> None:
        log.append((sim.now, tag))
        roll = rng.random()
        if roll < 0.55:
            event = sim.after(rng.uniform(0.0, 2_000.0), cb, rng.randrange(10_000))
            pending.append((event, event.seq))
        if roll < 0.25 and pending:
            event, seq = pending.pop(rng.randrange(len(pending)))
            sim.cancel(event, seq)
        if roll > 0.995:
            sim.stop()

    for i in range(300):
        event = sim.at(rng.uniform(0.0, 5_000.0), cb, i)
        pending.append((event, event.seq))

    marks = []
    # Alternate until-bounded and count-bounded segments, then drain.
    for step in range(12):
        if step % 2:
            sim.run(max_events=rng.randrange(1, 60))
        else:
            sim.run(until=sim.now + rng.uniform(0.0, 1_500.0))
        marks.append((round(sim.now, 9), sim.events_dispatched))
    sim.run(max_events=50_000)
    marks.append((round(sim.now, 9), sim.events_dispatched))
    return log, marks


def test_dispatch_batch_differential_fuzz():
    for seed in range(6):
        heap_log, heap_marks = _run_segmented("heap", 7_0131 + seed)
        wheel_log, wheel_marks = _run_segmented("wheel", 7_0131 + seed)
        assert heap_log == wheel_log
        assert heap_marks == wheel_marks


def test_in_callback_cancel_survives_heap_compaction():
    # A callback cancelling many events can trigger EventQueue._compact,
    # which rebinds the backing heap list mid-batch; the loop must keep
    # dispatching from the *new* list, not a stale alias.
    for kind in ("heap", "wheel"):
        sim = Simulation(queue=kind)
        sim.queue._compact_min_dead = 4
        fired = []
        doomed = []

        def massacre() -> None:
            for event, seq in doomed:
                sim.cancel(event, seq)

        sim.at(1.0, massacre)
        for i in range(50):
            event = sim.at(10.0 + i, fired.append, i)
            if i % 2:
                doomed.append((event, event.seq))
        sim.run()
        assert fired == [i for i in range(50) if not i % 2], kind
        assert sim.events_dispatched == 26, kind


def test_max_events_exit_leaves_clock_at_last_event():
    # The old loop checked max_events before popping; a count-bounded
    # exit must leave the clock at the last dispatched event even when
    # an until-horizon lies further out.
    for kind in ("heap", "wheel"):
        sim = Simulation(queue=kind)
        for i in range(5):
            sim.at(10.0 * (i + 1), lambda: None)
        assert sim.run(until=1_000.0, max_events=3) == 30.0, kind
        assert sim.events_dispatched == 3, kind
        # Resuming honours the horizon epilogue once drained.
        assert sim.run(until=1_000.0) == 1_000.0, kind
        assert sim.events_dispatched == 5, kind


def test_stop_halts_after_current_event():
    for kind in ("heap", "wheel"):
        sim = Simulation(queue=kind)
        order = []

        def stopper() -> None:
            order.append("stop")
            sim.stop()

        sim.at(1.0, order.append, "a")
        sim.at(2.0, stopper)
        sim.at(3.0, order.append, "b")
        sim.run(until=100.0)
        assert order == ["a", "stop"], kind
        assert sim.now == 2.0, kind
        sim.run(until=100.0)
        assert order == ["a", "stop", "b"], kind
        assert sim.now == 100.0, kind


def test_in_batch_insertions_dispatch_in_order():
    # A callback scheduling an event *earlier than the next pending one*
    # must see it dispatched first -- insertions land at or after the
    # batch cursor in both implementations.
    for kind in ("heap", "wheel"):
        sim = Simulation(queue=kind)
        order = []

        def wedge() -> None:
            order.append("wedge")
            sim.at(5.0, order.append, "inserted")

        sim.at(1.0, wedge)
        sim.at(10.0, order.append, "late")
        sim.run()
        assert order == ["wedge", "inserted", "late"], kind
