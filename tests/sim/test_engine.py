"""Simulation loop behaviour."""

import pytest

from repro.sim.engine import Simulation


def test_run_advances_clock_to_events():
    sim = Simulation()
    times = []
    sim.at(10.0, lambda: times.append(sim.now))
    sim.at(20.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [10.0, 20.0]
    assert sim.now == 20.0


def test_run_until_caps_clock():
    sim = Simulation()
    fired = []
    sim.at(5.0, fired.append, "early")
    sim.at(50.0, fired.append, "late")
    sim.run(until=30.0)
    assert fired == ["early"]
    assert sim.now == 30.0
    sim.run(until=60.0)
    assert fired == ["early", "late"]


def test_run_until_with_empty_queue_reaches_horizon():
    sim = Simulation()
    sim.run(until=1_000.0)
    assert sim.now == 1_000.0


def test_after_schedules_relative():
    sim = Simulation()
    seen = []
    sim.at(10.0, lambda: sim.after(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [15.0]


def test_scheduling_into_past_rejected():
    sim = Simulation()
    sim.at(10.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.after(-1.0, lambda: None)


def test_stop_halts_dispatch():
    sim = Simulation()
    fired = []
    sim.at(1.0, lambda: (fired.append("one"), sim.stop()))
    sim.at(2.0, fired.append, "two")
    sim.run()
    assert fired == ["one"]


def test_max_events_bound():
    sim = Simulation()
    for i in range(10):
        sim.at(float(i + 1), lambda: None)
    sim.run(max_events=3)
    assert sim.events_dispatched == 3


def test_cancel_through_engine():
    sim = Simulation()
    fired = []
    event = sim.at(1.0, fired.append, "no")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_events_fire_in_causal_order_with_chaining():
    sim = Simulation()
    order = []

    def first():
        order.append("first")
        sim.after(0.0, lambda: order.append("chained"))

    sim.at(1.0, first)
    sim.at(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "chained"]


def test_loop_not_reentrant():
    sim = Simulation()

    def nested():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.at(1.0, nested)
    sim.run()
