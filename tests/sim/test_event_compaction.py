"""EventQueue heap compaction under cancellation churn."""

from repro.sim import events
from repro.sim.events import COMPACT_ENV, EventQueue, TimingWheelQueue


def _noop() -> None:
    pass


def test_compaction_triggers_and_preserves_pending_events():
    q = EventQueue()
    keep = [q.schedule(float(i), _noop, i) for i in range(10)]
    churn = [q.schedule(1000.0 + i, _noop) for i in range(events.COMPACT_MIN_DEAD + 10)]
    for event in churn:
        q.cancel(event)
    assert q.compactions >= 1
    # Every dead entry in the heap is accounted for; the compacted bulk
    # is gone (only post-compaction cancellations may linger).
    assert len(q._heap) == len(keep) + q._dead
    assert q._dead < events.COMPACT_MIN_DEAD
    assert len(q) == len(keep)
    # Pop order is unchanged: time order, with original args intact.
    popped = []
    while True:
        event = q.pop()
        if event is None:
            break
        popped.append(event.args[0])
    assert popped == list(range(10))


def test_no_compaction_below_floor():
    q = EventQueue()
    live = q.schedule(5.0, _noop)
    doomed = [q.schedule(1.0 + i, _noop) for i in range(events.COMPACT_MIN_DEAD // 2)]
    for event in doomed:
        q.cancel(event)
    # Dead outnumber live but stay under the floor: no rebuild yet.
    assert q.compactions == 0
    assert q.pop() is live


def test_dead_count_tracks_pop_side_drain():
    q = EventQueue()
    doomed = [q.schedule(float(i), _noop) for i in range(10)]
    tail = q.schedule(99.0, _noop)
    for event in doomed:
        q.cancel(event)
    # pop() drains the dead prefix lazily; the counter must follow so a
    # later compaction scan is not triggered by already-drained entries.
    assert q.pop() is tail
    assert q._dead == 0


def test_compact_floor_env_override(monkeypatch):
    monkeypatch.setenv(COMPACT_ENV, "7")
    assert EventQueue()._compact_min_dead == 7
    assert TimingWheelQueue()._compact_min_dead == 7
    # An explicit constructor argument beats the environment...
    assert EventQueue(compact_min_dead=3)._compact_min_dead == 3
    # ...and without either, the module default applies.
    monkeypatch.delenv(COMPACT_ENV)
    assert EventQueue()._compact_min_dead == events.COMPACT_MIN_DEAD


def test_env_floor_changes_compaction_eagerness(monkeypatch):
    monkeypatch.setenv(COMPACT_ENV, "4")
    q = EventQueue()
    keep = q.schedule(0.5, _noop)
    doomed = [q.schedule(10.0 + i, _noop) for i in range(8)]
    for event in doomed:
        q.cancel(event)
    assert q.compactions >= 1  # default floor of 64 would never trigger
    assert q.pop() is keep
