"""Event queue ordering, cancellation, and tie-breaking.

Parameterized over both implementations (binary heap and timing wheel):
the observable contract is identical by construction, and these tests
are the executable statement of that contract.
"""

import pytest

from repro.sim.events import EventQueue, TimingWheelQueue


@pytest.fixture(params=["heap", "wheel"])
def queue(request):
    if request.param == "heap":
        return EventQueue()
    return TimingWheelQueue()


def test_pop_in_time_order(queue):
    fired = []
    queue.schedule(5.0, fired.append, "b")
    queue.schedule(1.0, fired.append, "a")
    queue.schedule(9.0, fired.append, "c")
    while True:
        event = queue.pop()
        if event is None:
            break
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_ties_break_by_schedule_order(queue):
    order = []
    for label in ("first", "second", "third"):
        queue.schedule(7.0, order.append, label)
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert order == ["first", "second", "third"]


def test_len_counts_pending_only(queue):
    event = queue.schedule(1.0, lambda: None)
    queue.schedule(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(event)
    assert len(queue) == 1
    queue.pop()
    assert len(queue) == 0


def test_cancelled_event_is_skipped(queue):
    fired = []
    cancel_me = queue.schedule(1.0, fired.append, "cancelled")
    queue.schedule(2.0, fired.append, "kept")
    queue.cancel(cancel_me)
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert fired == ["kept"]


def test_double_cancel_is_safe(queue):
    event = queue.schedule(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_peek_time_skips_cancelled(queue):
    early = queue.schedule(1.0, lambda: None)
    queue.schedule(3.0, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 3.0


def test_pop_empty_returns_none(queue):
    assert queue.pop() is None
    assert queue.peek_time() is None


def test_event_pending_flag(queue):
    event = queue.schedule(1.0, lambda: None)
    assert event.pending
    queue.pop()
    assert not event.pending


def test_pop_due_empty_queue(queue):
    assert queue.pop_due() == (None, None)
    assert queue.pop_due(until=5.0) == (None, None)


def test_pop_due_pops_events_at_or_before_bound(queue):
    queue.schedule(1.0, lambda: None)
    queue.schedule(5.0, lambda: None)
    event, when = queue.pop_due(until=5.0)
    assert event is not None and when == 1.0 and event.fired
    event, when = queue.pop_due(until=5.0)
    assert event is not None and when == 5.0
    assert queue.pop_due(until=5.0) == (None, None)


def test_pop_due_leaves_head_beyond_bound(queue):
    queue.schedule(7.0, lambda: None)
    event, when = queue.pop_due(until=5.0)
    assert event is None and when == 7.0
    assert len(queue) == 1  # still pending
    event, when = queue.pop_due(until=10.0)
    assert event is not None and when == 7.0


def test_pop_due_skips_cancelled_head(queue):
    dead = queue.schedule(1.0, lambda: None)
    queue.schedule(3.0, lambda: None)
    queue.cancel(dead)
    event, when = queue.pop_due(until=10.0)
    assert event is not None and when == 3.0


def test_pop_due_without_bound_pops_everything_in_order(queue):
    queue.schedule(2.0, lambda: None)
    queue.schedule(1.0, lambda: None)
    times = []
    while True:
        event, when = queue.pop_due()
        if event is None:
            break
        times.append(when)
    assert times == [1.0, 2.0]


def test_schedule_at_or_before_drain_point(queue):
    """An event scheduled at/before the last popped time fires next."""
    queue.schedule(100.0, lambda: None)
    queue.schedule(500.0, lambda: None)
    event, when = queue.pop_due()
    assert when == 100.0
    queue.schedule(50.0, lambda: None, "late")
    event, when = queue.pop_due()
    assert when == 50.0 and event.args == ("late",)
    event, when = queue.pop_due()
    assert when == 500.0
