"""Disk-file container binding (completing section 4.6's file half)."""

import pytest

from repro import Host, SystemMode
from repro.kernel.errors import BadDescriptorError
from repro.syscall import api


@pytest.fixture
def host():
    h = Host(mode=SystemMode.RC, seed=95)
    h.kernel.fs.add_file("/data.bin", 10 * 1024)
    h.kernel.fs.warm("/data.bin")
    return h


def run_program(host, body_factory, horizon_s=2.0):
    result = {}

    def main():
        result["value"] = yield from body_factory()

    host.kernel.spawn_process("prog", main)
    host.run(until_us=host.sim.now + horizon_s * 1e6)
    return result.get("value")


def test_open_and_read_through_descriptor(host):
    def program():
        fd = yield api.OpenFile("/data.bin")
        size = yield api.FdReadFile(fd)
        yield api.Close(fd)
        return size

    assert run_program(host, program) == 10 * 1024


def test_open_missing_file_raises(host):
    def program():
        try:
            yield api.OpenFile("/missing")
        except Exception as err:
            return type(err).__name__
        return "ok"

    assert run_program(host, program) == "FileNotFoundError_"


def test_read_through_closed_descriptor_raises(host):
    def program():
        fd = yield api.OpenFile("/data.bin")
        yield api.Close(fd)
        try:
            yield api.FdReadFile(fd)
        except BadDescriptorError:
            return "ebadf"
        return "ok"

    assert run_program(host, program) == "ebadf"


def test_bound_file_reads_charged_to_container(host):
    """The point of file binding: I/O through the descriptor is charged
    to the file's container, not the reader's own binding."""

    def program():
        cfd = yield api.ContainerCreate("file-owner")
        fd = yield api.OpenFile("/data.bin")
        yield api.ContainerBindSocket(fd, cfd)  # accepts file descriptors
        for _ in range(10):
            yield api.FdReadFile(fd)
        usage = yield api.ContainerGetUsage(cfd)
        return usage.cpu_us

    charged = run_program(host, program)
    # 10 reads x (5us cached + 5us/KB * 10KB) = 550us.
    assert charged == pytest.approx(550.0, rel=0.05)


def test_unbound_file_reads_charged_to_reader(host):
    def program():
        fd = yield api.OpenFile("/data.bin")
        binding_fd = yield api.ContainerGetBinding()
        before = (yield api.ContainerGetUsage(binding_fd)).cpu_us
        yield api.FdReadFile(fd)
        after = (yield api.ContainerGetUsage(binding_fd)).cpu_us
        return after - before

    delta = run_program(host, program)
    assert delta >= 55.0  # the read cost landed on the reader


def test_reader_binding_restored_after_override(host):
    def program():
        cfd = yield api.ContainerCreate("file-owner")
        fd = yield api.OpenFile("/data.bin")
        yield api.ContainerBindSocket(fd, cfd)
        yield api.FdReadFile(fd)
        mine = yield api.ContainerGetBinding()
        attrs = yield api.ContainerGetAttrs(mine)
        return attrs is not None

    assert run_program(host, program) is True


def test_container_survives_until_file_closed(host):
    def program():
        cfd = yield api.ContainerCreate("file-owner")
        fd = yield api.OpenFile("/data.bin")
        yield api.ContainerBindSocket(fd, cfd)
        yield api.Close(cfd)  # descriptor gone; binding keeps it alive
        yield api.FdReadFile(fd)  # still charges the bound container
        yield api.Close(fd)
        return "done"

    assert run_program(host, program) == "done"
    names = [c.name for c in host.kernel.containers.all_containers()]
    assert "file-owner" not in names  # released with the file


def test_subsequent_reads_hit_cache_cheaper(host):
    host.kernel.fs.add_file("/cold.bin", 1024)

    def program():
        fd = yield api.OpenFile("/cold.bin")
        t0 = yield api.GetTime()
        yield api.FdReadFile(fd)  # miss
        t1 = yield api.GetTime()
        yield api.FdReadFile(fd)  # hit
        t2 = yield api.GetTime()
        return (t1 - t0), (t2 - t1)

    miss_time, hit_time = run_program(host, program)
    # The miss blocked on the disk: at least the seek time longer.
    assert miss_time > hit_time + host.kernel.costs.disk_seek_us


def test_bound_file_miss_charges_disk_to_container(host):
    """A cache miss through a bound descriptor bills the *disk* phase to
    the handle's container too: the charge override survives the block."""
    host.kernel.fs.add_file("/cold2.bin", 4 * 1024)

    def program():
        cfd = yield api.ContainerCreate("file-owner")
        fd = yield api.OpenFile("/cold2.bin")
        yield api.ContainerBindSocket(fd, cfd)
        yield api.FdReadFile(fd)  # miss -> disk, charged to file-owner
        usage = yield api.ContainerGetUsage(cfd)
        return usage.disk_us, usage.disk_bytes

    disk_us, disk_bytes = run_program(host, program)
    expected = host.kernel.disk.service_time_us(4 * 1024)
    assert disk_us == pytest.approx(expected)
    assert disk_bytes == 4 * 1024
