"""Filesystem and buffer cache."""

import pytest

from repro.fs.filesystem import BufferCache, FileNotFoundError_, FileSystem
from repro.kernel.costs import DEFAULT_COSTS


def test_add_and_size():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    assert fs.size_of("/a") == 1024
    assert fs.exists("/a")
    assert not fs.exists("/b")


def test_missing_file_raises():
    fs = FileSystem(DEFAULT_COSTS)
    with pytest.raises(FileNotFoundError_):
        fs.size_of("/nope")


def test_negative_size_rejected():
    fs = FileSystem(DEFAULT_COSTS)
    with pytest.raises(ValueError):
        fs.add_file("/a", -1)


def test_first_read_misses_then_hits():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    cost_miss, size, hit = fs.read_cost("/a")
    assert not hit
    assert size == 1024
    cost_hit, _, hit2 = fs.read_cost("/a")
    assert hit2
    assert cost_hit < cost_miss
    assert cost_miss - cost_hit == pytest.approx(DEFAULT_COSTS.fs_miss_penalty)


def test_warm_prefills_cache():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    fs.warm("/a")
    _cost, _size, hit = fs.read_cost("/a")
    assert hit


def test_hit_cost_scales_with_size():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/small", 1024)
    fs.add_file("/big", 64 * 1024)
    fs.warm("/small")
    fs.warm("/big")
    small_cost, _, _ = fs.read_cost("/small")
    big_cost, _, _ = fs.read_cost("/big")
    assert big_cost > small_cost


def test_lru_eviction():
    cache = BufferCache(capacity_bytes=3000)
    cache.access("/a", 1500)
    cache.access("/b", 1500)
    cache.access("/a", 1500)  # touch /a so /b is LRU
    cache.access("/c", 1500)  # evicts /b
    assert cache.resident("/a")
    assert not cache.resident("/b")
    assert cache.resident("/c")


def test_oversized_file_never_cached():
    cache = BufferCache(capacity_bytes=1000)
    assert not cache.access("/huge", 5000)
    assert not cache.resident("/huge")
    assert cache.used_bytes == 0


def test_cache_stats():
    cache = BufferCache(capacity_bytes=10_000)
    cache.access("/a", 100)
    cache.access("/a", 100)
    assert cache.hits == 1
    assert cache.misses == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferCache(capacity_bytes=0)
