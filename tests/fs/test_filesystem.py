"""Filesystem and buffer cache."""

import pytest

from repro.fs.filesystem import BufferCache, FileNotFoundError_, FileSystem
from repro.kernel.costs import DEFAULT_COSTS


def test_add_and_size():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    assert fs.size_of("/a") == 1024
    assert fs.exists("/a")
    assert not fs.exists("/b")


def test_missing_file_raises():
    fs = FileSystem(DEFAULT_COSTS)
    with pytest.raises(FileNotFoundError_):
        fs.size_of("/nope")


def test_negative_size_rejected():
    fs = FileSystem(DEFAULT_COSTS)
    with pytest.raises(ValueError):
        fs.add_file("/a", -1)


def test_lookup_then_insert_becomes_hit():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    assert not fs.cache.lookup("/a")  # cold: a miss the caller must fill
    assert fs.cache.insert("/a", 1024)  # disk completion inserts
    assert fs.cache.lookup("/a")


def test_read_cpu_cost_same_for_hit_and_miss():
    """The miss's extra latency is device time, not CPU."""
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    cold = fs.read_cpu_cost("/a")
    fs.warm("/a")
    assert fs.read_cpu_cost("/a") == cold


def test_warm_prefills_cache():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/a", 1024)
    fs.warm("/a")
    assert fs.cache.lookup("/a")


def test_cpu_cost_scales_with_size():
    fs = FileSystem(DEFAULT_COSTS)
    fs.add_file("/small", 1024)
    fs.add_file("/big", 64 * 1024)
    assert fs.read_cpu_cost("/big") > fs.read_cpu_cost("/small")


def test_lru_eviction():
    cache = BufferCache(capacity_bytes=3000)
    cache.access("/a", 1500)
    cache.access("/b", 1500)
    cache.access("/a", 1500)  # touch /a so /b is LRU
    cache.access("/c", 1500)  # evicts /b
    assert cache.resident("/a")
    assert not cache.resident("/b")
    assert cache.resident("/c")


def test_oversized_file_never_cached():
    cache = BufferCache(capacity_bytes=1000)
    assert not cache.access("/huge", 5000)
    assert not cache.resident("/huge")
    assert cache.used_bytes == 0


def test_file_exactly_at_capacity_is_cached():
    """A file the size of the whole cache fits (evicting everything)."""
    cache = BufferCache(capacity_bytes=4096)
    cache.access("/small", 1000)
    assert cache.access("/exact", 4096) is False  # first touch is a miss
    assert cache.resident("/exact")
    assert not cache.resident("/small")  # evicted to make room
    assert cache.used_bytes == 4096


def test_eviction_order_under_interleaved_warm_and_access():
    """Recency is per *touch* (lookup or insert), not per first insert."""
    cache = BufferCache(capacity_bytes=3000)
    cache.access("/a", 1000)  # order: a
    cache.access("/b", 1000)  # order: a b
    cache.access("/c", 1000)  # order: a b c (full)
    cache.access("/b", 1000)  # hit: order a c b
    cache.access("/a", 1000)  # hit: order c b a
    cache.access("/d", 1000)  # evicts /c (LRU), not /a or /b
    assert not cache.resident("/c")
    assert cache.resident("/a")
    assert cache.resident("/b")
    assert cache.resident("/d")
    cache.access("/e", 1000)  # next LRU is /b (untouched since its hit)
    assert not cache.resident("/b")


def test_resident_does_not_perturb_lru():
    """``resident()``/``owner_of()`` are pure queries: no recency touch."""
    cache = BufferCache(capacity_bytes=2000)
    cache.access("/a", 1000)
    cache.access("/b", 1000)
    # Query /a many times; a true LRU *touch* would protect it.
    for _ in range(5):
        assert cache.resident("/a")
        assert cache.owner_of("/a") is None
    cache.access("/c", 1000)  # must evict /a, the genuine LRU
    assert not cache.resident("/a")
    assert cache.resident("/b")
    assert cache.resident("/c")


def test_cache_stats():
    cache = BufferCache(capacity_bytes=10_000)
    cache.access("/a", 100)
    cache.access("/a", 100)
    assert cache.hits == 1
    assert cache.misses == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferCache(capacity_bytes=0)
