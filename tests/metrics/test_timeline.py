"""Timeline recording from cpu.slice traces."""

import pytest

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.metrics.timeline import TimelineRecorder
from repro.syscall import api


def test_bucket_size_validated():
    host = Host(mode=SystemMode.RC, seed=93)
    with pytest.raises(ValueError):
        TimelineRecorder(host.sim, bucket_us=0)


def test_records_compute_slices():
    host = Host(mode=SystemMode.RC, seed=93)
    recorder = TimelineRecorder(host.sim)

    def burn():
        yield api.Compute(5_000.0)

    host.kernel.spawn_process("burner", burn)
    host.run(until_us=50_000.0)
    assert recorder.share_of("proc:burner") > 0.9
    activity = recorder.by_principal["proc:burner"]
    assert activity.total_us == pytest.approx(5_000.0, abs=50.0)
    assert activity.slices >= 5  # sliced by the 1 ms quantum


def test_totals_match_cpu_accounting():
    host = Host(mode=SystemMode.RC, seed=93)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    recorder = TimelineRecorder(host.sim)
    EventDrivenServer(host.kernel, use_containers=True).install()
    HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c").start(at_us=2_000.0)
    host.run(seconds=0.2)
    assert recorder.total_us == pytest.approx(
        host.kernel.cpu.accounting.total_cpu_us, rel=1e-9
    )
    assert recorder.interrupt_us > 0


def test_bucket_series_covers_run():
    host = Host(mode=SystemMode.RC, seed=93)
    recorder = TimelineRecorder(host.sim, bucket_us=10_000.0)

    def burn():
        for _ in range(10):
            yield api.Compute(5_000.0)
            yield api.Sleep(5_000.0)

    host.kernel.spawn_process("burner", burn)
    host.run(until_us=120_000.0)
    series = recorder.bucket_series("proc:burner")
    assert len(series) >= 5
    assert sum(v for _, v in series) == pytest.approx(50_000.0, abs=200.0)


def test_render_lists_top_principals():
    host = Host(mode=SystemMode.RC, seed=93)
    recorder = TimelineRecorder(host.sim)

    def burn():
        yield api.Compute(1_000.0)

    host.kernel.spawn_process("one", burn)
    host.kernel.spawn_process("two", burn)
    host.run(until_us=50_000.0)
    rendered = recorder.render()
    assert "proc:one" in rendered
    assert "proc:two" in rendered
    assert "interrupt context" in rendered


def test_no_tracing_cost_when_unattached():
    """Without a recorder the trace bus stays inactive (cheap path)."""
    host = Host(mode=SystemMode.RC, seed=93)
    assert not host.sim.trace.active
    recorder = TimelineRecorder(host.sim)
    assert host.sim.trace.active
    del recorder

def test_unknown_principal_queries_are_benign():
    host = Host(mode=SystemMode.RC, seed=93)
    recorder = TimelineRecorder(host.sim, bucket_us=10_000.0)

    def burn():
        yield api.Compute(3_000.0)

    host.kernel.spawn_process("burner", burn)
    host.run(until_us=30_000.0)
    assert recorder.share_of("no-such-principal") == 0.0
    series = recorder.bucket_series("no-such-principal")
    assert series and all(v == 0.0 for _, v in series)


def test_timeline_reconciles_with_container_ledgers():
    """Every principal's timeline total must equal the matching
    container's *own* (non-subtree) CPU ledger, bit for bit: both fold
    the same ``cpu.slice`` stream, so any divergence means a charge was
    observed that was never booked (or vice versa)."""
    host = Host(mode=SystemMode.RC, seed=93)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    recorder = TimelineRecorder(host.sim)
    EventDrivenServer(host.kernel, use_containers=True).install()
    HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c").start(at_us=2_000.0)
    host.run(seconds=0.2)

    def walk(container):
        yield container
        for child in container.children:
            yield from walk(child)

    by_name = {c.name: c for c in walk(host.kernel.containers.root)}
    charged = [a for n, a in recorder.by_principal.items()
               if n != "<unaccounted>"]
    assert charged, "expected charged principals in a container run"
    for activity in charged:
        container = by_name[activity.name]
        assert activity.total_us == container.usage.cpu_us
        assert activity.network_us == container.usage.cpu_network_us
    unaccounted = recorder.by_principal["<unaccounted>"]
    assert unaccounted.total_us == (
        host.kernel.cpu.accounting.unaccounted_cpu_us
    )
