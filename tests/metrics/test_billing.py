"""Billing and capacity-planning reports."""

import pytest

from repro.core.attributes import fixed_share_attrs
from repro.core.operations import ContainerManager
from repro.metrics.billing import BillingReport, Tariff


@pytest.fixture
def populated():
    manager = ContainerManager()
    guest_a = manager.create("guest-a", attrs=fixed_share_attrs(0.5))
    leaf_a = manager.create("conn", parent=guest_a)
    guest_b = manager.create("guest-b", attrs=fixed_share_attrs(0.5))
    leaf_a.usage.charge_cpu(2_000_000.0, network=True)
    leaf_a.usage.packets_received = 1_000_000
    leaf_a.usage.connections_accepted = 100
    guest_b.usage.charge_cpu(500_000.0)
    return manager, guest_a, guest_b


def test_tariff_charges():
    tariff = Tariff(per_cpu_second=1.0, per_million_packets=2.0,
                    per_connection=0.5)
    amount = tariff.charge(cpu_us=3e6, packets=2_000_000, connections=4)
    assert amount == pytest.approx(3.0 + 4.0 + 2.0)


def test_tariff_charges_disk_dimensions():
    tariff = Tariff(per_cpu_second=0.0, per_million_packets=0.0,
                    per_connection=0.0, per_disk_second=2.0,
                    per_disk_gb=4.0)
    amount = tariff.charge(
        cpu_us=1e6, packets=10, connections=1,
        disk_us=5e5, disk_bytes=2**29,
    )
    assert amount == pytest.approx(2.0 * 0.5 + 4.0 * 0.5)


def test_report_bills_subtrees(populated):
    manager, guest_a, _guest_b = populated
    report = BillingReport.generate(manager, elapsed_us=10e6)
    by_name = {line.name: line for line in report.lines}
    assert by_name["guest-a"].cpu_us == pytest.approx(2_000_000.0)
    assert by_name["guest-a"].packets == 1_000_000
    assert by_name["guest-b"].cpu_us == pytest.approx(500_000.0)


def test_report_sorted_by_amount(populated):
    manager, *_ = populated
    report = BillingReport.generate(manager, elapsed_us=10e6)
    amounts = [line.amount for line in report.lines]
    assert amounts == sorted(amounts, reverse=True)


def test_customer_filter(populated):
    manager, *_ = populated
    report = BillingReport.generate(
        manager, elapsed_us=10e6,
        customer_filter=lambda c: c.name == "guest-a",
    )
    assert [line.name for line in report.lines] == ["guest-a"]


def test_render_contains_capacity_footer(populated):
    manager, *_ = populated
    report = BillingReport.generate(
        manager, elapsed_us=10e6, unaccounted_cpu_us=1e6
    )
    rendered = report.render()
    assert "Billing report" in rendered
    assert "capacity:" in rendered
    assert "25.0% of machine CPU billed" in rendered
    assert "10.0%" in rendered  # unaccounted


def test_end_to_end_billing_from_live_host():
    from repro import Host, SystemMode, ip_addr
    from repro.apps.httpserver import EventDrivenServer
    from repro.apps.webclient import HttpClient

    host = Host(mode=SystemMode.RC, seed=73)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    EventDrivenServer(host.kernel, use_containers=True).install()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=2_000.0)
    host.run(seconds=0.5)
    report = BillingReport.generate(
        host.kernel.containers,
        elapsed_us=host.now,
        unaccounted_cpu_us=host.kernel.cpu.accounting.unaccounted_cpu_us,
    )
    assert report.lines
    assert report.total_billed_cpu_us() > 0
    assert any(line.connections > 0 for line in report.lines)


def test_billing_reconciles_with_resource_usage_ledgers():
    """The invoice total must be exactly the root's subtree CPU ledger,
    and billed + unaccounted must re-compose the CPU accounting total.
    This is the billing-level restatement of the charging-conservation
    invariant the sanitizer enforces per-slice."""
    from repro import Host, SystemMode, ip_addr
    from repro.apps.httpserver import EventDrivenServer
    from repro.apps.webclient import HttpClient
    from repro.core.hierarchy import subtree_usage

    host = Host(mode=SystemMode.RC, seed=73, sanitize=True)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    EventDrivenServer(host.kernel, use_containers=True).install()
    HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c").start(at_us=2_000.0)
    host.run(seconds=0.3)
    accounting = host.kernel.cpu.accounting
    report = BillingReport.generate(
        host.kernel.containers,
        elapsed_us=host.now,
        unaccounted_cpu_us=accounting.unaccounted_cpu_us,
    )
    # Line-by-line: each invoice equals that customer's subtree ledger.
    for line in report.lines:
        container = next(
            c for c in host.kernel.containers.root.children
            if c.name == line.name
        )
        usage = subtree_usage(container)
        assert line.cpu_us == usage.cpu_us
        assert line.network_cpu_us == usage.cpu_network_us
        assert line.packets == usage.packets_received
        assert line.connections == usage.connections_accepted
        assert line.disk_us == usage.disk_us
        assert line.disk_bytes == usage.disk_bytes
    # Totals: billed == root subtree; billed + unaccounted == machine.
    assert report.total_billed_cpu_us() == (
        subtree_usage(host.kernel.containers.root).cpu_us
    )
    assert report.total_billed_cpu_us() + accounting.unaccounted_cpu_us \
        == pytest.approx(accounting.total_cpu_us, rel=1e-9)


def test_disk_billing_reconciles_with_device_and_ledgers():
    """Disk invoices must re-compose the device's own meters bit for
    bit: billed disk service + unaccounted == total busy time, and each
    customer's disk line equals its subtree ledger."""
    from repro import Host, SystemMode, ip_addr
    from repro.apps.httpserver import EventDrivenServer
    from repro.apps.webclient import HttpClient
    from repro.core.hierarchy import subtree_usage

    host = Host(mode=SystemMode.RC, seed=74, sanitize=True)
    # Cold files and a tiny cache: every request takes the disk path.
    host.kernel.fs.add_file("/cold.bin", 16 * 1024)
    host.kernel.fs.cache.capacity_bytes = 1024
    EventDrivenServer(host.kernel, use_containers=True).install()
    HttpClient(
        host.kernel, ip_addr(10, 0, 0, 1), "c", path="/cold.bin",
    ).start(at_us=2_000.0)
    host.run(seconds=0.3)
    disk = host.kernel.disk
    assert disk.requests_completed > 0
    report = BillingReport.generate(
        host.kernel.containers, elapsed_us=host.now
    )
    for line in report.lines:
        container = next(
            c for c in host.kernel.containers.root.children
            if c.name == line.name
        )
        usage = subtree_usage(container)
        assert line.disk_us == usage.disk_us
        assert line.disk_bytes == usage.disk_bytes
    assert report.total_billed_disk_us() > 0
    assert report.total_billed_disk_us() + disk.unaccounted_us \
        == pytest.approx(disk.busy_us, rel=1e-9)
    # Disk consumption prices into the invoice amount.
    tariff = Tariff()
    for line in report.lines:
        assert line.amount == pytest.approx(
            tariff.charge(
                line.cpu_us, line.packets, line.connections,
                disk_us=line.disk_us, disk_bytes=line.disk_bytes,
            )
        )
