"""Measurement helpers."""

import pytest

from repro.core.attributes import fixed_share_attrs
from repro.core.operations import ContainerManager
from repro.metrics.stats import (
    LatencyRecorder,
    Series,
    ThroughputMeter,
    UsageSampler,
    mean,
    percentile,
)


def test_mean_values():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_mean_empty_raises():
    # An empty window has no mean; 0.0 would masquerade as a perfect
    # latency figure.
    with pytest.raises(ValueError):
        mean([])


def test_percentile_basics():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == pytest.approx(25.0)
    assert percentile([7.0], 90) == 7.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_validates_range_before_emptiness():
    with pytest.raises(ValueError, match="0..100"):
        percentile([1.0], 101)
    # Range is checked first, so a bad pct is reported as such even on
    # an empty sequence.
    with pytest.raises(ValueError, match="0..100"):
        percentile([], 200)


def test_percentile_matches_reference_quartiles():
    """Property-style check against the stdlib's independent
    implementation: on many seeded random samples, our linear
    interpolation must agree with ``statistics.quantiles`` (inclusive
    method -- the same NIST "linear" definition) at the quartiles."""
    import random
    import statistics

    rng = random.Random(1999)
    for trial in range(50):
        n = rng.randint(2, 40)
        values = [rng.uniform(-1e3, 1e3) for _ in range(n)]
        q1, q2, q3 = statistics.quantiles(values, n=4, method="inclusive")
        assert percentile(values, 25) == pytest.approx(q1)
        assert percentile(values, 50) == pytest.approx(q2)
        assert percentile(values, 75) == pytest.approx(q3)


def test_percentile_invariants_on_random_samples():
    """More properties: bounded by min/max, exact at the endpoints,
    monotone in pct, order-insensitive."""
    import random

    rng = random.Random(77)
    for trial in range(25):
        values = [rng.gauss(0.0, 100.0) for _ in range(rng.randint(1, 30))]
        lo, hi = min(values), max(values)
        assert percentile(values, 0) == lo
        assert percentile(values, 100) == hi
        previous = lo
        for pct in range(0, 101, 5):
            current = percentile(values, pct)
            assert lo <= current <= hi
            assert current >= previous - 1e-12
            previous = current
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert percentile(shuffled, 37.5) == percentile(values, 37.5)


def test_throughput_meter_window():
    meter = ThroughputMeter()
    meter.record(100.0)  # before start: ignored
    meter.start(1_000_000.0)
    for t in range(10):
        meter.record(1_000_000.0 + t * 1_000.0)
    meter.stop(2_000_000.0)
    meter.record(3_000_000.0)  # after stop: ignored
    assert meter.count == 10
    assert meter.rate_per_second() == pytest.approx(10.0)


def test_throughput_meter_without_stop_uses_now():
    meter = ThroughputMeter()
    meter.start(0.0)
    meter.record(1.0)
    assert meter.rate_per_second(now=500_000.0) == pytest.approx(2.0)


def test_latency_recorder_window_filter():
    recorder = LatencyRecorder()
    recorder.start(1_000.0)
    recorder.record(500.0, 2_000.0)   # started pre-window: dropped
    recorder.record(1_500.0, 3_500.0)
    assert recorder.samples == [2_000.0]
    assert recorder.mean_ms() == pytest.approx(2.0)
    assert recorder.percentile_ms(100) == pytest.approx(2.0)


def test_latency_recorder_empty_window_reports_zero():
    # The recorder (not the raw stats helpers) owns the "idle window
    # renders as zero" convention the figure tables rely on.
    recorder = LatencyRecorder()
    recorder.start(0.0)
    assert recorder.mean_ms() == 0.0
    assert recorder.percentile_ms(95) == 0.0


def test_usage_sampler_cpu_share():
    manager = ContainerManager()
    container = manager.create("c", attrs=fixed_share_attrs(0.5))
    leaf = manager.create("leaf", parent=container)
    sampler = UsageSampler()
    sampler.watch(container)
    leaf.usage.charge_cpu(100.0)  # pre-window usage
    sampler.start(0.0)
    leaf.usage.charge_cpu(250.0)
    assert sampler.cpu_us(container, 1_000.0) == pytest.approx(250.0)
    assert sampler.cpu_share(container, 1_000.0) == pytest.approx(0.25)


def test_series_accessors():
    series = Series("curve")
    series.add(1.0, 10.0)
    series.add(2.0, 20.0)
    assert series.xs() == [1.0, 2.0]
    assert series.ys() == [10.0, 20.0]
