"""Measurement helpers."""

import pytest

from repro.core.attributes import fixed_share_attrs
from repro.core.operations import ContainerManager
from repro.metrics.stats import (
    LatencyRecorder,
    Series,
    ThroughputMeter,
    UsageSampler,
    mean,
    percentile,
)


def test_mean_empty_and_values():
    assert mean([]) == 0.0
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_percentile_basics():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == pytest.approx(25.0)
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 90) == 7.0


def test_percentile_validates_range():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_throughput_meter_window():
    meter = ThroughputMeter()
    meter.record(100.0)  # before start: ignored
    meter.start(1_000_000.0)
    for t in range(10):
        meter.record(1_000_000.0 + t * 1_000.0)
    meter.stop(2_000_000.0)
    meter.record(3_000_000.0)  # after stop: ignored
    assert meter.count == 10
    assert meter.rate_per_second() == pytest.approx(10.0)


def test_throughput_meter_without_stop_uses_now():
    meter = ThroughputMeter()
    meter.start(0.0)
    meter.record(1.0)
    assert meter.rate_per_second(now=500_000.0) == pytest.approx(2.0)


def test_latency_recorder_window_filter():
    recorder = LatencyRecorder()
    recorder.start(1_000.0)
    recorder.record(500.0, 2_000.0)   # started pre-window: dropped
    recorder.record(1_500.0, 3_500.0)
    assert recorder.samples == [2_000.0]
    assert recorder.mean_ms() == pytest.approx(2.0)
    assert recorder.percentile_ms(100) == pytest.approx(2.0)


def test_usage_sampler_cpu_share():
    manager = ContainerManager()
    container = manager.create("c", attrs=fixed_share_attrs(0.5))
    leaf = manager.create("leaf", parent=container)
    sampler = UsageSampler()
    sampler.watch(container)
    leaf.usage.charge_cpu(100.0)  # pre-window usage
    sampler.start(0.0)
    leaf.usage.charge_cpu(250.0)
    assert sampler.cpu_us(container, 1_000.0) == pytest.approx(250.0)
    assert sampler.cpu_share(container, 1_000.0) == pytest.approx(0.25)


def test_series_accessors():
    series = Series("curve")
    series.add(1.0, 10.0)
    series.add(2.0, 20.0)
    assert series.xs() == [1.0, 2.0]
    assert series.ys() == [10.0, 20.0]
