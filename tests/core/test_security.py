"""Container access control (the §4.1 extension)."""

import pytest

from repro import Host, SystemMode
from repro.core.security import (
    AccessDeniedError,
    ContainerAcl,
    DEFAULT_TRANSFER_RIGHTS,
    Right,
    acl_of,
    check_access,
)
from repro.core.container import ResourceContainer
from repro.kernel.kernel import KernelConfig
from repro.syscall import api


# ---------------------------------------------------------------------------
# Pure ACL mechanics
# ---------------------------------------------------------------------------


def test_owner_holds_all_rights():
    acl = ContainerAcl(owner_pid=7)
    assert acl.allows(7, Right.all())
    assert not acl.allows(8, Right.OBSERVE)


def test_unowned_is_permissive_via_check():
    container = ResourceContainer("c")
    check_access(container, pid=99, needed=Right.ADMIN, enforce=True)


def test_grants_are_cumulative():
    acl = ContainerAcl(owner_pid=1)
    acl.grant(2, Right.OBSERVE)
    acl.grant(2, Right.BIND)
    assert acl.allows(2, Right.OBSERVE | Right.BIND)
    assert not acl.allows(2, Right.ADMIN)


def test_revoke_clears_grants():
    acl = ContainerAcl(owner_pid=1)
    acl.grant(2, Right.all())
    acl.revoke(2)
    assert not acl.allows(2, Right.OBSERVE)


def test_check_access_disabled_is_noop():
    container = ResourceContainer("c")
    acl_of(container).owner_pid = 1
    check_access(container, pid=2, needed=Right.ADMIN, enforce=False)


def test_check_access_denies_with_message():
    container = ResourceContainer("c")
    acl_of(container).owner_pid = 1
    with pytest.raises(AccessDeniedError, match="set_attributes"):
        check_access(
            container, pid=2, needed=Right.ADMIN, enforce=True,
            operation="set_attributes",
        )


def test_default_transfer_rights_cover_bind_and_observe():
    assert DEFAULT_TRANSFER_RIGHTS & Right.BIND
    assert DEFAULT_TRANSFER_RIGHTS & Right.OBSERVE
    assert not DEFAULT_TRANSFER_RIGHTS & Right.ADMIN


# ---------------------------------------------------------------------------
# Syscall-level enforcement
# ---------------------------------------------------------------------------


def acl_host():
    config = KernelConfig(mode=SystemMode.RC, container_acl=True)
    return Host(mode=SystemMode.RC, seed=79, config=config)


def run_program(host, body_factory, horizon_s=2.0):
    result = {}

    def main():
        result["value"] = yield from body_factory()

    host.kernel.spawn_process("prog", main)
    host.run(until_us=host.sim.now + horizon_s * 1e6)
    return result.get("value")


def test_creator_owns_and_operates():
    host = acl_host()

    def program():
        fd = yield api.ContainerCreate("mine")
        yield api.ContainerBindThread(fd)
        usage = yield api.ContainerGetUsage(fd)
        return usage is not None

    assert run_program(host, program) is True


def test_other_process_denied_without_grant():
    host = acl_host()
    outcome = {}

    def intruder_main():
        def body():
            yield api.Sleep(10_000.0)
            # Learn the victim's cid out-of-band (a scan).
            victim = next(
                c
                for c in host.kernel.containers.all_containers()
                if c.name == "secret"
            )
            try:
                yield api.ContainerGetHandle(victim.cid)
            except AccessDeniedError:
                outcome["handle"] = "denied"
            else:
                outcome["handle"] = "allowed"

        return body()

    def owner():
        yield api.ContainerCreate("secret")
        yield api.Fork(intruder_main, name="intruder", pass_fds=[])
        yield api.Sleep(50_000.0)

    host.kernel.spawn_process("owner", owner)
    host.run(until_us=200_000.0)
    assert outcome["handle"] == "denied"


def test_sendto_grants_bind_but_not_admin():
    host = acl_host()
    outcome = {}

    def worker_body(pipe_holder):
        pipe_fd, = pipe_holder
        item = yield api.PipeRead(pipe_fd)
        cfd = item["cfd"]
        yield api.ContainerBindThread(cfd)  # BIND: granted
        outcome["bind"] = "ok"
        from repro.core.attributes import timeshare_attrs

        try:
            yield api.ContainerSetAttrs(cfd, timeshare_attrs(priority=9))
        except AccessDeniedError:
            outcome["admin"] = "denied"
        else:
            outcome["admin"] = "allowed"

    pipe_holder = []

    def owner():
        pipe_fd = yield api.PipeCreate()
        pipe_holder.append(pipe_fd)
        pid = yield api.Fork(
            lambda: worker_body(pipe_holder), name="worker", pass_fds=[pipe_fd]
        )
        cfd = yield api.ContainerCreate("shared")
        remote_cfd = yield api.ContainerSendTo(cfd, pid)
        yield api.PipeWrite(pipe_fd, {"cfd": remote_cfd})
        yield api.Sleep(100_000.0)

    host.kernel.spawn_process("owner", owner)
    host.run(until_us=500_000.0)
    assert outcome == {"bind": "ok", "admin": "denied"}


def test_explicit_grant_of_admin():
    host = acl_host()
    outcome = {}

    def worker_body(pipe_holder):
        pipe_fd, = pipe_holder
        item = yield api.PipeRead(pipe_fd)
        from repro.core.attributes import timeshare_attrs

        try:
            yield api.ContainerSetAttrs(
                item["cfd"], timeshare_attrs(priority=9)
            )
        except AccessDeniedError:
            outcome["admin"] = "denied"
        else:
            outcome["admin"] = "allowed"

    pipe_holder = []

    def owner():
        pipe_fd = yield api.PipeCreate()
        pipe_holder.append(pipe_fd)
        pid = yield api.Fork(
            lambda: worker_body(pipe_holder), name="worker",
            pass_fds=[pipe_fd],
        )
        cfd = yield api.ContainerCreate("shared")
        remote_cfd = yield api.ContainerSendTo(cfd, pid)
        yield api.ContainerGrant(cfd, pid, Right.ADMIN)
        yield api.PipeWrite(pipe_fd, {"cfd": remote_cfd})
        yield api.Sleep(100_000.0)

    host.kernel.spawn_process("owner", owner)
    host.run(until_us=500_000.0)
    assert outcome == {"admin": "allowed"}


def test_acl_off_by_default_everything_allowed():
    host = Host(mode=SystemMode.RC, seed=79)
    outcome = {}

    def intruder_main():
        def body():
            yield api.Sleep(10_000.0)
            victim = next(
                c
                for c in host.kernel.containers.all_containers()
                if c.name == "secret"
            )
            fd = yield api.ContainerGetHandle(victim.cid)
            outcome["handle"] = fd is not None

        return body()

    def owner():
        yield api.ContainerCreate("secret")
        yield api.Fork(intruder_main, name="intruder", pass_fds=[])
        yield api.Sleep(50_000.0)

    host.kernel.spawn_process("owner", owner)
    host.run(until_us=200_000.0)
    assert outcome["handle"] is True
