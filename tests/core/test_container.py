"""ResourceContainer structure, references, and charging."""

import pytest

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.container import ContainerState, ResourceContainer
from repro.kernel.errors import ContainerPolicyError


def make_root():
    return ResourceContainer("<root>", is_root=True)


def test_parent_child_links():
    root = make_root()
    child = ResourceContainer("c", parent=root)
    assert child.parent is root
    assert child in root.children


def test_timeshare_container_cannot_have_children():
    root = make_root()
    ts_parent = ResourceContainer("ts", attrs=timeshare_attrs(), parent=root)
    with pytest.raises(ContainerPolicyError):
        ResourceContainer("kid", parent=ts_parent)


def test_fixed_share_container_can_have_children():
    root = make_root()
    fs_parent = ResourceContainer(
        "fs", attrs=fixed_share_attrs(0.5), parent=root
    )
    kid = ResourceContainer("kid", parent=fs_parent)
    assert kid.parent is fs_parent


def test_cycle_rejected():
    root = make_root()
    a = ResourceContainer("a", attrs=fixed_share_attrs(0.5), parent=root)
    b = ResourceContainer("b", attrs=fixed_share_attrs(0.5), parent=a)
    with pytest.raises(ContainerPolicyError):
        a.set_parent(b)


def test_self_parent_rejected():
    root = make_root()
    a = ResourceContainer("a", attrs=fixed_share_attrs(0.5), parent=root)
    with pytest.raises(ContainerPolicyError):
        a.set_parent(a)


def test_root_parent_immutable():
    root = make_root()
    other = make_root()
    with pytest.raises(ContainerPolicyError):
        root.set_parent(other)


def test_reparent_moves_child_lists():
    root = make_root()
    a = ResourceContainer("a", attrs=fixed_share_attrs(0.4), parent=root)
    b = ResourceContainer("b", attrs=fixed_share_attrs(0.4), parent=root)
    c = ResourceContainer("c", parent=a)
    c.set_parent(b)
    assert c not in a.children
    assert c in b.children


def test_detach_to_no_parent():
    root = make_root()
    c = ResourceContainer("c", parent=root)
    c.set_parent(None)
    assert c.parent is None
    assert c not in root.children


def test_reference_counting_totals():
    c = ResourceContainer("c")
    c.ref_descriptor()
    c.ref_thread_binding()
    c.ref_object_binding()
    assert c.total_refs == 3
    assert not c.unref_descriptor()
    assert not c.unref_thread_binding()
    assert c.unref_object_binding()  # last one reports unreferenced


def test_unbalanced_unref_raises():
    c = ResourceContainer("c")
    with pytest.raises(ContainerPolicyError):
        c.unref_descriptor()


def test_charge_propagates_window_to_ancestors():
    root = make_root()
    parent = ResourceContainer("p", attrs=fixed_share_attrs(0.5), parent=root)
    leaf = ResourceContainer("leaf", parent=parent)
    leaf.charge_cpu(10.0)
    assert leaf.window_usage_us == 10.0
    assert parent.window_usage_us == 10.0
    assert root.window_usage_us == 10.0
    # Cumulative usage stays direct.
    assert leaf.usage.cpu_us == 10.0
    assert parent.usage.cpu_us == 0.0


def test_reset_window_is_local():
    root = make_root()
    leaf = ResourceContainer("leaf", parent=root)
    leaf.charge_cpu(5.0)
    leaf.reset_window()
    assert leaf.window_usage_us == 0.0
    assert root.window_usage_us == 5.0  # parent reset separately


def test_destroyed_container_rejects_operations():
    c = ResourceContainer("c")
    c.state = ContainerState.DESTROYED
    with pytest.raises(ContainerPolicyError):
        c.ref_descriptor()


def test_network_charge_categories():
    c = ResourceContainer("c")
    c.charge_cpu(7.0, network=True)
    c.charge_cpu(3.0, syscall=True)
    assert c.usage.cpu_us == 10.0
    assert c.usage.cpu_network_us == 7.0
    assert c.usage.cpu_syscall_us == 3.0
