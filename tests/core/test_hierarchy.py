"""Hierarchy traversal helpers and invariants."""

import pytest

from repro.core.attributes import fixed_share_attrs
from repro.core.container import ResourceContainer
from repro.core.hierarchy import (
    ancestors_and_self,
    depth_of,
    effective_cpu_limit,
    iter_subtree,
    root_of,
    subtree_usage,
    top_level_of,
    validate_hierarchy,
)
from repro.kernel.errors import ContainerPolicyError


@pytest.fixture
def tree():
    root = ResourceContainer("<root>", is_root=True)
    guest = ResourceContainer(
        "guest", attrs=fixed_share_attrs(0.5, cpu_limit=0.5), parent=root
    )
    cgi_parent = ResourceContainer(
        "cgi", attrs=fixed_share_attrs(0.3, cpu_limit=0.3), parent=guest
    )
    leaf_a = ResourceContainer("a", parent=cgi_parent)
    leaf_b = ResourceContainer("b", parent=guest)
    return root, guest, cgi_parent, leaf_a, leaf_b


def test_ancestors_and_self(tree):
    root, guest, cgi_parent, leaf_a, _ = tree
    chain = list(ancestors_and_self(leaf_a))
    assert chain == [leaf_a, cgi_parent, guest, root]


def test_root_of(tree):
    root, _guest, _cgi, leaf_a, _ = tree
    assert root_of(leaf_a) is root
    assert root_of(root) is root


def test_top_level_of(tree):
    root, guest, _cgi, leaf_a, leaf_b = tree
    assert top_level_of(leaf_a) is guest
    assert top_level_of(leaf_b) is guest
    assert top_level_of(guest) is guest


def test_iter_subtree_covers_everything(tree):
    root, *_rest = tree
    names = {c.name for c in iter_subtree(root)}
    assert names == {"<root>", "guest", "cgi", "a", "b"}


def test_depth(tree):
    root, guest, cgi_parent, leaf_a, _ = tree
    assert depth_of(root) == 0
    assert depth_of(guest) == 1
    assert depth_of(leaf_a) == 3


def test_subtree_usage_aggregates(tree):
    _root, guest, cgi_parent, leaf_a, leaf_b = tree
    leaf_a.usage.charge_cpu(10.0)
    leaf_b.usage.charge_cpu(5.0)
    cgi_parent.usage.charge_cpu(1.0)
    total = subtree_usage(guest)
    assert total.cpu_us == 16.0


def test_effective_cpu_limit_takes_tightest(tree):
    _root, _guest, _cgi, leaf_a, leaf_b = tree
    assert effective_cpu_limit(leaf_a) == 0.3
    assert effective_cpu_limit(leaf_b) == 0.5


def test_validate_accepts_good_tree(tree):
    root, *_ = tree
    validate_hierarchy(root)


def test_validate_rejects_oversubscription():
    root = ResourceContainer("<root>", is_root=True)
    ResourceContainer("a", attrs=fixed_share_attrs(0.7), parent=root)
    ResourceContainer("b", attrs=fixed_share_attrs(0.6), parent=root)
    with pytest.raises(ContainerPolicyError):
        validate_hierarchy(root)


def test_validate_rejects_broken_parent_link(tree):
    root, guest, *_ = tree
    guest.children[0].parent = None  # corrupt on purpose
    with pytest.raises(ContainerPolicyError):
        validate_hierarchy(root)
