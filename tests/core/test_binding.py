"""Resource and scheduler bindings (paper sections 4.2-4.3)."""

from repro.core.binding import BindingManager, SchedulerBinding
from repro.core.container import ContainerState, ResourceContainer
from repro.core.attributes import timeshare_attrs


class _FakeThread:
    """Minimal stand-in carrying the binding fields."""

    def __init__(self):
        self.resource_binding = None
        self.scheduler_binding = SchedulerBinding()


def test_observe_and_members():
    binding = SchedulerBinding()
    a = ResourceContainer("a")
    b = ResourceContainer("b")
    binding.observe(a, now=0.0)
    binding.observe(b, now=1.0)
    assert len(binding) == 2
    assert a in binding
    assert b in binding


def test_prune_removes_stale():
    binding = SchedulerBinding()
    a = ResourceContainer("a")
    b = ResourceContainer("b")
    binding.observe(a, now=0.0)
    binding.observe(b, now=90_000.0)
    removed = binding.prune(now=150_000.0, max_age_us=100_000.0)
    assert removed == 1
    assert a not in binding
    assert b in binding


def test_prune_removes_dead_containers():
    binding = SchedulerBinding()
    a = ResourceContainer("a")
    binding.observe(a, now=0.0)
    a.state = ContainerState.DESTROYED
    assert binding.prune(now=1.0) == 1
    assert len(binding) == 0


def test_reobserve_refreshes_age():
    binding = SchedulerBinding()
    a = ResourceContainer("a")
    binding.observe(a, now=0.0)
    binding.observe(a, now=99_000.0)
    assert binding.prune(now=150_000.0, max_age_us=100_000.0) == 0


def test_reset_to_keeps_only_current():
    binding = SchedulerBinding()
    a = ResourceContainer("a")
    b = ResourceContainer("b")
    binding.observe(a, now=0.0)
    binding.observe(b, now=0.0)
    binding.reset_to(b, now=1.0)
    assert len(binding) == 1
    assert b in binding


def test_combined_priority_is_max():
    binding = SchedulerBinding()
    binding.observe(ResourceContainer("lo", attrs=timeshare_attrs(priority=1)), 0.0)
    binding.observe(ResourceContainer("hi", attrs=timeshare_attrs(priority=9)), 0.0)
    assert binding.combined_priority() == 9


def test_combined_priority_empty_is_zero():
    assert SchedulerBinding().combined_priority() == 0


def test_bind_thread_moves_reference():
    destroyed = []
    manager = BindingManager(destroyed.append)
    thread = _FakeThread()
    a = ResourceContainer("a")
    b = ResourceContainer("b")
    manager.bind_thread(thread, a, now=0.0)
    assert a.thread_binding_refs == 1
    manager.bind_thread(thread, b, now=1.0)
    assert a.thread_binding_refs == 0
    assert b.thread_binding_refs == 1
    # a became unreferenced and was reported.
    assert destroyed == [a]
    # Scheduler binding remembers both (until pruned).
    assert a in thread.scheduler_binding
    assert b in thread.scheduler_binding


def test_rebind_same_container_is_noop():
    destroyed = []
    manager = BindingManager(destroyed.append)
    thread = _FakeThread()
    a = ResourceContainer("a")
    manager.bind_thread(thread, a, now=0.0)
    manager.bind_thread(thread, a, now=1.0)
    assert a.thread_binding_refs == 1
    assert destroyed == []


def test_unbind_thread_releases():
    destroyed = []
    manager = BindingManager(destroyed.append)
    thread = _FakeThread()
    a = ResourceContainer("a")
    manager.bind_thread(thread, a, now=0.0)
    manager.unbind_thread(thread)
    assert thread.resource_binding is None
    assert destroyed == [a]
