"""ContainerManager lifecycle semantics (paper section 4.6)."""

import pytest

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.container import ContainerState
from repro.core.operations import ContainerManager
from repro.kernel.errors import ContainerPolicyError


@pytest.fixture
def manager():
    return ContainerManager()


def test_create_defaults_under_root(manager):
    c = manager.create("c")
    assert c.parent is manager.root
    assert c.descriptor_refs == 1


def test_release_destroys_unreferenced(manager):
    c = manager.create("c")
    manager.release(c)
    assert c.state is ContainerState.DESTROYED
    with pytest.raises(ContainerPolicyError):
        manager.lookup(c.cid)


def test_release_keeps_multiply_referenced(manager):
    c = manager.create("c")
    manager.add_descriptor_ref(c)
    manager.release(c)
    assert c.alive
    manager.release(c)
    assert not c.alive


def test_thread_binding_keeps_container_alive(manager):
    c = manager.create("c")
    c.ref_thread_binding()
    manager.release(c)  # descriptor gone, binding remains
    assert c.alive
    if c.unref_thread_binding():
        manager._maybe_destroy(c)
    assert not c.alive


def test_destroying_parent_orphans_children(manager):
    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    child = manager.create("c", parent=parent)
    manager.release(parent)
    assert not parent.alive
    assert child.parent is None
    assert child.alive


def test_root_cannot_be_destroyed(manager):
    manager.release(manager.root)
    assert manager.root.alive


def test_on_destroy_hook_fires(manager):
    seen = []
    manager.on_destroy.append(seen.append)
    c = manager.create("c")
    manager.release(c)
    assert seen == [c]


def test_on_create_hook_fires(manager):
    seen = []
    manager.on_create.append(seen.append)
    c = manager.create("c")
    assert seen == [c]


def test_set_attributes_checks_structure(manager):
    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    manager.create("c", parent=parent)
    with pytest.raises(ContainerPolicyError):
        manager.set_attributes(parent, timeshare_attrs())


def test_set_attributes_ok_for_leaf(manager):
    c = manager.create("c")
    manager.set_attributes(c, timeshare_attrs(priority=8))
    assert manager.get_attributes(c).numeric_priority == 8


def test_get_usage_recursive(manager):
    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    child = manager.create("c", parent=parent)
    child.usage.charge_cpu(20.0)
    parent.usage.charge_cpu(5.0)
    assert manager.get_usage(parent).cpu_us == 25.0
    assert manager.get_usage(parent, recursive=False).cpu_us == 5.0


def test_lookup_dead_container_fails(manager):
    c = manager.create("c")
    manager.release(c)
    with pytest.raises(ContainerPolicyError):
        manager.lookup(c.cid)


def test_all_containers_excludes_destroyed(manager):
    c = manager.create("c")
    assert c in manager.all_containers()
    manager.release(c)
    assert c not in manager.all_containers()


def test_object_binding_refcount(manager):
    c = manager.create("c")
    c.ref_object_binding()
    manager.release(c)
    assert c.alive  # socket binding keeps it alive
    manager.drop_object_binding(c)
    assert not c.alive
