"""Property-based tests over container hierarchies (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.container import ResourceContainer
from repro.core.hierarchy import (
    iter_subtree,
    subtree_usage,
    validate_hierarchy,
)
from repro.core.operations import ContainerManager


@st.composite
def hierarchy_ops(draw):
    """A random sequence of create/charge/release operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("create"), st.booleans()),
                st.tuples(st.just("charge"), st.floats(0.0, 1000.0)),
                st.tuples(st.just("release"), st.integers(0, 30)),
            ),
            min_size=1,
            max_size=60,
        )
    )


@given(hierarchy_ops())
@settings(max_examples=60, deadline=None)
def test_hierarchy_invariants_hold_under_random_ops(ops):
    """After any operation sequence the structural invariants hold and
    charged CPU is conserved into the subtree aggregate."""
    manager = ContainerManager()
    created = []
    total_charged = 0.0
    fixed_budget = 1.0
    for op in ops:
        if op[0] == "create":
            interior = op[1]
            # Keep fixed shares under the root's budget so validation
            # can insist on non-oversubscription.
            if interior and fixed_budget > 0.05:
                share = min(0.1, fixed_budget)
                fixed_budget -= share
                attrs = fixed_share_attrs(share)
            else:
                attrs = timeshare_attrs()
            parents = [
                c
                for c in created
                if c.alive and c.attrs.fixed_share is not None
            ]
            parent = parents[-1] if parents else None
            created.append(manager.create("c", attrs=attrs, parent=parent))
        elif op[0] == "charge":
            alive = [c for c in created if c.alive and c.is_leaf]
            if alive:
                alive[-1].charge_cpu(op[1])
                total_charged += op[1]
        elif op[0] == "release":
            index = op[1]
            if index < len(created) and created[index].alive:
                if created[index].descriptor_refs > 0:
                    manager.release(created[index])
    validate_hierarchy(manager.root)
    # Conservation: every charged microsecond is visible either in a
    # live container's ledger or was destroyed along with its container.
    live_cpu = subtree_usage(manager.root).cpu_us
    assert live_cpu <= total_charged + 1e-6


@given(st.lists(st.floats(0.0, 500.0), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_window_usage_matches_sum_of_charges(amounts):
    """Window accounting up the ancestor chain equals the exact sum."""
    manager = ContainerManager()
    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    leaf = manager.create("leaf", parent=parent)
    for amount in amounts:
        leaf.charge_cpu(amount)
    expected = sum(amounts)
    assert abs(leaf.window_usage_us - expected) < 1e-6
    assert abs(parent.window_usage_us - expected) < 1e-6
    assert abs(manager.root.window_usage_us - expected) < 1e-6


@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.floats(0.0, 100.0)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_subtree_usage_equals_manual_sum(charges):
    """subtree_usage over a fan-out equals a hand-maintained total."""
    manager = ContainerManager()
    parent = manager.create("p", attrs=fixed_share_attrs(0.9))
    leaves = [manager.create(f"leaf{i}", parent=parent) for i in range(5)]
    expected = 0.0
    for index, amount in charges:
        leaves[index].charge_cpu(amount)
        expected += amount
    assert abs(subtree_usage(parent).cpu_us - expected) < 1e-6


@given(st.integers(1, 25))
@settings(max_examples=30, deadline=None)
def test_iter_subtree_counts(n_leaves):
    manager = ContainerManager()
    parent = manager.create("p", attrs=fixed_share_attrs(0.5))
    for i in range(n_leaves):
        manager.create(f"leaf{i}", parent=parent)
    # parent + leaves
    assert sum(1 for _ in iter_subtree(parent)) == n_leaves + 1
