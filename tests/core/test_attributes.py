"""Container attribute validation."""

import pytest

from repro.core.attributes import (
    ContainerAttributes,
    SchedClass,
    fixed_share_attrs,
    timeshare_attrs,
)


def test_defaults_are_timeshare():
    attrs = ContainerAttributes()
    assert attrs.sched_class is SchedClass.TIMESHARE
    assert attrs.fixed_share is None
    assert attrs.cpu_limit is None


def test_fixed_share_requires_share():
    with pytest.raises(ValueError):
        ContainerAttributes(sched_class=SchedClass.FIXED_SHARE)


def test_fixed_share_range():
    with pytest.raises(ValueError):
        fixed_share_attrs(0.0)
    with pytest.raises(ValueError):
        fixed_share_attrs(1.5)
    assert fixed_share_attrs(1.0).fixed_share == 1.0


def test_timeshare_rejects_fixed_share():
    with pytest.raises(ValueError):
        ContainerAttributes(
            sched_class=SchedClass.TIMESHARE, fixed_share=0.5
        )


def test_negative_priority_rejected():
    with pytest.raises(ValueError):
        timeshare_attrs(priority=-1)


def test_zero_priority_allowed():
    assert timeshare_attrs(priority=0).numeric_priority == 0


def test_cpu_limit_range():
    with pytest.raises(ValueError):
        timeshare_attrs(cpu_limit=0.0)
    with pytest.raises(ValueError):
        timeshare_attrs(cpu_limit=1.2)
    assert timeshare_attrs(cpu_limit=0.3).cpu_limit == 0.3


def test_memory_limit_non_negative():
    with pytest.raises(ValueError):
        ContainerAttributes(memory_limit_bytes=-1)
    assert ContainerAttributes(memory_limit_bytes=0).memory_limit_bytes == 0


def test_weight_positive():
    with pytest.raises(ValueError):
        timeshare_attrs(weight=0.0)


def test_updated_revalidates():
    attrs = timeshare_attrs()
    with pytest.raises(ValueError):
        attrs.updated(numeric_priority=-5)
    new = attrs.updated(numeric_priority=9)
    assert new.numeric_priority == 9
    assert attrs.numeric_priority != 9  # original unchanged (frozen)


def test_fixed_share_helper_sets_limit():
    attrs = fixed_share_attrs(0.3, cpu_limit=0.3)
    assert attrs.sched_class is SchedClass.FIXED_SHARE
    assert attrs.cpu_limit == 0.3
