"""Property-based scheduler tests (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.operations import ContainerManager
from repro.sched.container_sched import ContainerScheduler

from tests.sched.test_container_sched import FakeEntity, simulate


@given(
    shares=st.lists(
        st.floats(0.05, 0.4), min_size=2, max_size=4
    ).filter(lambda s: sum(s) <= 1.0)
)
@settings(max_examples=25, deadline=None)
def test_fixed_shares_proportional_under_saturation(shares):
    """Stride scheduling delivers shares proportional to guarantees for
    always-runnable entities (the section 5.8 exactness property)."""
    manager = ContainerManager()
    sched = ContainerScheduler(manager.root)
    entities = []
    for index, share in enumerate(shares):
        container = manager.create(
            f"g{index}", attrs=fixed_share_attrs(share)
        )
        entity = FakeEntity(f"e{index}", container)
        entities.append(entity)
        sched.attach(entity)
    usage = simulate(sched, entities, manager, 600)
    total = sum(usage.values())
    assert total > 0
    for index, share in enumerate(shares):
        observed = usage[f"e{index}"] / total
        expected = share / sum(shares)
        assert abs(observed - expected) < 0.08


@given(n=st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_no_starvation_within_priority_layer(n):
    """Every runnable entity in one layer eventually runs."""
    manager = ContainerManager()
    sched = ContainerScheduler(manager.root)
    entities = []
    for index in range(n):
        container = manager.create(f"c{index}", attrs=timeshare_attrs())
        entity = FakeEntity(f"e{index}", container)
        entities.append(entity)
        sched.attach(entity)
    usage = simulate(sched, entities, manager, n * 30)
    assert all(value > 0 for value in usage.values())


@given(
    limit=st.floats(0.1, 0.5),
    steps=st.integers(100, 400),
)
@settings(max_examples=20, deadline=None)
def test_cpu_limit_never_exceeded_per_window(limit, steps):
    """A capped subtree never exceeds limit*window inside any window."""
    manager = ContainerManager()
    sched = ContainerScheduler(manager.root, quantum_us=500.0, window_us=10_000.0)
    capped = manager.create(
        "capped", attrs=fixed_share_attrs(limit, cpu_limit=limit)
    )
    leaf = manager.create("leaf", parent=capped)
    entity = FakeEntity("e", leaf)
    sched.attach(entity)
    now = 0.0
    quantum = 500.0
    for _ in range(steps):
        picked = sched.pick(now)
        if picked is not None:
            leaf.charge_cpu(quantum)
            sched.charge(picked, leaf, quantum, now)
            # Within-window cap: usage may overshoot by at most one
            # quantum (the slice in flight when the cap was crossed).
            assert capped.window_usage_us <= limit * 10_000.0 + quantum + 1e-6
        now += quantum
        if now % 10_000.0 < quantum:
            sched.window_roll(now)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_pick_is_deterministic(seed):
    """Identical construction gives identical pick sequences."""

    def sequence():
        manager = ContainerManager()
        sched = ContainerScheduler(manager.root)
        entities = [
            FakeEntity(f"e{i}", manager.create(f"c{i}")) for i in range(4)
        ]
        for entity in entities:
            sched.attach(entity)
        names = []
        now = 0.0
        for _ in range(50):
            picked = sched.pick(now)
            names.append(picked.name)
            sched.charge(picked, picked.container, 1000.0, now)
            picked.container.charge_cpu(1000.0)
            now += 1000.0
        return names

    assert sequence() == sequence()
