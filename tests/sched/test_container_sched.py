"""ContainerScheduler policy behaviour (strict layers, stride, caps)."""

import pytest

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.operations import ContainerManager
from repro.sched.container_sched import ContainerScheduler


class FakeEntity:
    """Schedulable stub with a fixed charge container."""

    def __init__(self, name, container, sched_containers=None):
        self.name = name
        self.container = container
        self.sched_containers = sched_containers
        self.runnable = True

    def charge_container(self):
        return self.container

    def scheduler_containers(self):
        if self.sched_containers is not None:
            return self.sched_containers
        return [self.container] if self.container else []


@pytest.fixture
def setup():
    manager = ContainerManager()
    sched = ContainerScheduler(manager.root, quantum_us=1000.0, window_us=10_000.0)
    return manager, sched


def simulate(sched, entities, manager, steps, quantum=1000.0):
    """Run the pick/charge loop; returns cpu per entity name."""
    usage = {e.name: 0.0 for e in entities}
    now = 0.0
    for step in range(steps):
        entity = sched.pick(now)
        if entity is None:
            now += quantum
            continue
        container = entity.charge_container()
        if container is not None:
            container.charge_cpu(quantum)
        sched.charge(entity, container, quantum, now)
        usage[entity.name] += quantum
        now += quantum
        if now % sched.window_us < quantum:
            sched.window_roll(now)
    return usage


def test_equal_weights_share_equally(setup):
    manager, sched = setup
    entities = []
    for i in range(3):
        c = manager.create(f"p{i}", attrs=timeshare_attrs())
        entities.append(FakeEntity(f"e{i}", c))
        sched.attach(entities[-1])
    usage = simulate(sched, entities, manager, 300)
    values = list(usage.values())
    assert max(values) - min(values) <= 2000.0  # within two quanta


def test_fixed_shares_respected(setup):
    manager, sched = setup
    heavy = manager.create("heavy", attrs=fixed_share_attrs(0.75))
    light = manager.create("light", attrs=fixed_share_attrs(0.25))
    a = FakeEntity("a", heavy)
    b = FakeEntity("b", light)
    sched.attach(a)
    sched.attach(b)
    usage = simulate(sched, [a, b], manager, 400)
    total = usage["a"] + usage["b"]
    assert usage["a"] / total == pytest.approx(0.75, abs=0.05)


def test_strict_priority_layers(setup):
    manager, sched = setup
    high = manager.create("high", attrs=timeshare_attrs(priority=9))
    low = manager.create("low", attrs=timeshare_attrs(priority=1))
    a = FakeEntity("a", high)
    b = FakeEntity("b", low)
    sched.attach(a)
    sched.attach(b)
    usage = simulate(sched, [a, b], manager, 100)
    assert usage["a"] == pytest.approx(100 * 1000.0)
    assert usage["b"] == 0.0


def test_priority_zero_runs_only_when_idle(setup):
    manager, sched = setup
    blackhole = manager.create("bh", attrs=timeshare_attrs(priority=0))
    normal = manager.create("n", attrs=timeshare_attrs(priority=4))
    zero = FakeEntity("zero", blackhole)
    busy = FakeEntity("busy", normal)
    sched.attach(zero)
    sched.attach(busy)
    assert sched.pick(0.0) is busy
    busy.runnable = False
    assert sched.pick(0.0) is zero


def test_cpu_limit_throttles_within_window(setup):
    manager, sched = setup
    capped = manager.create(
        "capped", attrs=fixed_share_attrs(0.3, cpu_limit=0.3)
    )
    leaf = manager.create("leaf", parent=capped)
    entity = FakeEntity("e", leaf)
    sched.attach(entity)
    # Burn 30% of the window.
    leaf.charge_cpu(3_000.0)
    assert sched.capped_out(leaf)
    assert sched.is_throttled(entity, 0.0)
    assert sched.pick(0.0) is None
    sched.window_roll(10_000.0)
    assert sched.pick(10_000.0) is entity


def test_cap_applies_to_whole_subtree(setup):
    manager, sched = setup
    capped = manager.create("capped", attrs=fixed_share_attrs(0.3, cpu_limit=0.3))
    leaf_a = manager.create("a", parent=capped)
    leaf_b = manager.create("b", parent=capped)
    leaf_a.charge_cpu(3_000.0)  # sibling consumed the whole budget
    assert sched.capped_out(leaf_b)


def test_round_robin_within_group_ignores_history(setup):
    """A thread that consumed heavily elsewhere still gets its turn when
    it joins a group (the fig12 CGI-dispatch starvation regression)."""
    manager, sched = setup
    group = manager.create("grp", attrs=fixed_share_attrs(0.5))
    leaf1 = manager.create("l1", parent=group)
    leaf2 = manager.create("l2", parent=group)
    hog = FakeEntity("hog", leaf1)
    newcomer = FakeEntity("new", leaf2)
    sched.attach(hog)
    sched.attach(newcomer)
    # Hog runs alone for a long time.
    newcomer.runnable = False
    simulate(sched, [hog, newcomer], manager, 200)
    newcomer.runnable = True
    first = sched.pick(0.0)
    assert first is newcomer  # least-recently-ran wins immediately


def test_group_vtime_clamp_prevents_monopoly(setup):
    """A group idle for a long time must not monopolise on wake-up."""
    manager, sched = setup
    active = manager.create("active", attrs=timeshare_attrs())
    sleeper = manager.create("sleeper", attrs=timeshare_attrs())
    a = FakeEntity("a", active)
    s = FakeEntity("s", sleeper)
    sched.attach(a)
    sched.attach(s)
    s.runnable = False
    simulate(sched, [a, s], manager, 500)
    s.runnable = True
    usage = simulate(sched, [a, s], manager, 100)
    # Roughly alternating after wake-up, not 100 slices to the sleeper.
    assert usage["a"] >= 40 * 1000.0


def test_detach_forgets_entity(setup):
    manager, sched = setup
    c = manager.create("c")
    entity = FakeEntity("e", c)
    sched.attach(entity)
    sched.detach(entity)
    assert sched.pick(0.0) is None


def test_group_weight_residual_split(setup):
    manager, sched = setup
    fixed = manager.create("fixed", attrs=fixed_share_attrs(0.4))
    ts1 = manager.create("ts1", attrs=timeshare_attrs(weight=2.0))
    ts2 = manager.create("ts2", attrs=timeshare_attrs(weight=1.0))
    assert sched.group_weight(fixed) == pytest.approx(0.4)
    assert sched.group_weight(ts1) == pytest.approx(0.6 * 2 / 3)
    assert sched.group_weight(ts2) == pytest.approx(0.6 / 3)


def test_scheduler_binding_priority_combines(setup):
    manager, sched = setup
    low = manager.create("low", attrs=timeshare_attrs(priority=1))
    high = manager.create("high", attrs=timeshare_attrs(priority=9))
    other = manager.create("other", attrs=timeshare_attrs(priority=5))
    multiplexed = FakeEntity("mux", low, sched_containers=[low, high])
    plain = FakeEntity("plain", other)
    sched.attach(multiplexed)
    sched.attach(plain)
    # mux charges 'low' but its combined priority (9) beats plain's 5.
    assert sched.pick(0.0) is multiplexed
