"""Decay-usage scheduler behaviour."""

import pytest

from repro.core.operations import ContainerManager
from repro.sched.timeshare import UnixTimeshareScheduler

from tests.sched.test_container_sched import FakeEntity


@pytest.fixture
def setup():
    manager = ContainerManager()
    sched = UnixTimeshareScheduler(quantum_us=1000.0)
    return manager, sched


def test_lowest_usage_runs_first(setup):
    manager, sched = setup
    a = FakeEntity("a", manager.create("a"))
    b = FakeEntity("b", manager.create("b"))
    sched.attach(a)
    sched.attach(b)
    sched.charge(a, a.container, 5_000.0, 0.0)
    assert sched.pick(0.0) is b


def test_usage_decays_over_time(setup):
    manager, sched = setup
    a = FakeEntity("a", manager.create("a"))
    sched.attach(a)
    sched.charge(a, a.container, 8_000.0, 0.0)
    early = sched.decayed_usage(a, 0.0)
    late = sched.decayed_usage(a, 2_000_000.0)  # two half-lives
    assert late == pytest.approx(early / 4.0, rel=0.01)


def test_equal_usage_alternates_fairly(setup):
    manager, sched = setup
    a = FakeEntity("a", manager.create("a"))
    b = FakeEntity("b", manager.create("b"))
    sched.attach(a)
    sched.attach(b)
    usage = {"a": 0.0, "b": 0.0}
    now = 0.0
    for _ in range(100):
        entity = sched.pick(now)
        sched.charge(entity, entity.container, 1000.0, now)
        usage[entity.name] += 1000.0
        now += 1000.0
    assert usage["a"] == pytest.approx(usage["b"], abs=2000.0)


def test_blocked_entities_skipped(setup):
    manager, sched = setup
    a = FakeEntity("a", manager.create("a"))
    sched.attach(a)
    a.runnable = False
    assert sched.pick(0.0) is None


def test_detach_cleans_state(setup):
    manager, sched = setup
    a = FakeEntity("a", manager.create("a"))
    sched.attach(a)
    sched.charge(a, a.container, 100.0, 0.0)
    sched.detach(a)
    assert sched.pick(0.0) is None
