"""Schedule-order determinism across scheduler implementations.

The O(log n) index rework of :class:`ContainerScheduler` must be
*bit-for-bit* behaviour-preserving: every pick, charge, and preemption
of a seeded run has to happen at the same simulated instant for the
same entity as with the original linear-scan implementation.  This test
pins that down: it runs a busy mixed workload (event-driven HTTP server
with per-request containers, a CPU-capped CGI sand-box, and a SYN
flood against a priority-zero container) and hashes every ``cpu.slice``
trace record -- kind, time, duration, charged container, entity.

``EXPECTED_DIGEST`` was recorded with the pre-optimisation scheduler
(linear scan over all entities in ``pick()``).  If a future scheduler
change alters this digest, it reordered the schedule; that may be
intentional, but it must be an explicit decision (re-record the digest
in the same PR and say why), never a silent side effect of a perf
change.

Re-recorded with the repro.io disk subsystem: file reads lost the flat
CPU miss penalty in favour of an asynchronous device phase, and the
event-driven server now serves static files through container-bound
descriptors (an extra OpenFile/ContainerBindSocket per class) -- both
deliberately reshape the schedule, so the old digest could not survive.
"""

import contextlib
import hashlib
import itertools

from repro import Host, SystemMode, ip_addr
from repro.apps.httpserver import CgiPolicy, EventDrivenServer
from repro.apps.synflood import SynFlooder
from repro.apps.webclient import HttpClient

EXPECTED_DIGEST = (
    "aac1667cbd348c51d5d69a01e6bfc213367900855c0d85fb43adc8e0eba8f54e"
)


@contextlib.contextmanager
def _fresh_id_counters():
    """Reset the global id counters for the duration of the run.

    Container/process/thread names embed ids drawn from module-level
    ``itertools.count`` streams, and those names feed the digest -- so
    without this, the digest would depend on how many objects earlier
    tests in the same process happened to create.  The original counter
    objects are restored afterwards so other tests keep unique ids.
    """
    from repro.apps import mailserver as mail_mod
    from repro.apps import webclient as webclient_mod
    from repro.apps.httpserver import cgi as cgi_mod
    from repro.core import container as container_mod
    from repro.kernel import events as kevents_mod
    from repro.kernel import process as process_mod
    from repro.net import packet as packet_mod
    from repro.net import tcp as tcp_mod

    saved = [
        (container_mod, "_container_ids"),
        (process_mod, "_pids"),
        (process_mod, "_tids"),
        (packet_mod, "_packet_seq"),
        (tcp_mod, "_conn_ids"),
        (kevents_mod, "_event_seq"),
        (cgi_mod, "_cgi_ids"),
        (webclient_mod, "_request_ids"),
        (mail_mod, "_message_ids"),
    ]
    originals = [(mod, attr, getattr(mod, attr)) for mod, attr in saved]
    for mod, attr in saved:
        setattr(mod, attr, itertools.count(1))
    try:
        yield
    finally:
        for mod, attr, counter in originals:
            setattr(mod, attr, counter)


def scheduling_digest(seed: int = 20990131) -> str:
    """Digest of every CPU slice of a seeded mixed run."""
    with _fresh_id_counters():
        return _scheduling_digest_inner(seed)


def _scheduling_digest_inner(seed: int) -> str:
    host = Host(mode=SystemMode.RC, seed=seed)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    records = host.sim.trace.record(["cpu.slice"])
    server = EventDrivenServer(
        host.kernel,
        use_containers=True,
        cgi=CgiPolicy(cpu_us=30_000.0, cpu_limit=0.3),
        event_api="select",
    )
    server.install()
    clients = [
        HttpClient(
            host.kernel,
            ip_addr(10, 0, 0, i + 1),
            f"c{i}",
            think_time_us=400.0,
            rng=host.sim.rng.fork(f"c{i}"),
        )
        for i in range(6)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + index * 131.0)
    cgi_client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "cgi", path="/cgi/x",
        timeout_us=60_000_000.0,
    )
    cgi_client.start(at_us=11_000.0)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=3_000.0, batch=4,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=80_000.0)
    host.run(seconds=0.4)
    digest = hashlib.sha256()
    for record in records:
        line = (
            f"{record.time:.6f}|{record.data.get('kind')}"
            f"|{record.data.get('amount_us'):.6f}"
            f"|{record.data.get('charge')}|{record.data.get('entity')}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()


def test_seeded_schedule_digest_is_stable():
    assert scheduling_digest() == EXPECTED_DIGEST
