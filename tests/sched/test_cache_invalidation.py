"""Scheduler cache invalidation under hierarchy and attribute mutation.

The indexed scheduler memoizes top-level groups, group weights, and
limit chains, and keeps push-notify entities in ready queues keyed by
(priority, group).  Every mutation channel -- reparenting, attribute
replacement through the manager, rebinding, binding-set changes -- must
be reflected in the very next ``pick()``/``group_weight()`` call, with
no stale cache residue.
"""

import pytest

from repro.core.attributes import fixed_share_attrs, timeshare_attrs
from repro.core.operations import ContainerManager
from repro.sched.container_sched import ContainerScheduler


class NotifyEntity:
    """Push-notify schedulable stub (exercises the indexed fast path)."""

    sched_push_notify = True

    def __init__(self, name, container):
        self.name = name
        self._container = container
        self.runnable = True
        self.sched_note_change = None

    @property
    def container(self):
        return self._container

    @container.setter
    def container(self, value):
        changed = value is not self._container
        self._container = value
        if changed and self.sched_note_change is not None:
            self.sched_note_change()

    def charge_container(self):
        return self._container

    def scheduler_containers(self):
        return [self._container] if self._container else []


@pytest.fixture
def setup():
    manager = ContainerManager()
    sched = ContainerScheduler(manager.root, quantum_us=1000.0, window_us=10_000.0)
    return manager, sched


def drain(sched, steps, quantum=1000.0, start=0.0):
    """Run the pick/charge loop; returns per-entity-name quanta counts."""
    counts: dict[str, int] = {}
    now = start
    for _ in range(steps):
        entity = sched.pick(now)
        if entity is None:
            now += quantum
            continue
        container = entity.charge_container()
        if container is not None:
            container.charge_cpu(quantum)
        sched.charge(entity, container, quantum, now)
        counts[entity.name] = counts.get(entity.name, 0) + 1
        now += quantum
    return counts


def test_priority_change_reflected_in_next_pick(setup):
    manager, sched = setup
    high = manager.create("high", attrs=timeshare_attrs(priority=9))
    low = manager.create("low", attrs=timeshare_attrs(priority=1))
    a = NotifyEntity("a", high)
    b = NotifyEntity("b", low)
    sched.attach(a)
    sched.attach(b)
    assert sched.pick(0.0) is a
    # Invert the priorities mid-run through the manager.
    manager.set_attributes(high, timeshare_attrs(priority=1))
    manager.set_attributes(low, timeshare_attrs(priority=9))
    assert sched.pick(0.0) is b


def test_share_change_shifts_allocation_mid_run(setup):
    manager, sched = setup
    big = manager.create("big", attrs=fixed_share_attrs(0.75))
    small = manager.create("small", attrs=fixed_share_attrs(0.25))
    a = NotifyEntity("a", big)
    b = NotifyEntity("b", small)
    sched.attach(a)
    sched.attach(b)
    first = drain(sched, 200)
    assert first["a"] > first["b"]
    # Swap the shares; the stride weights must re-resolve immediately.
    manager.set_attributes(big, fixed_share_attrs(0.25))
    manager.set_attributes(small, fixed_share_attrs(0.75))
    second = drain(sched, 200, start=200_000.0)
    assert second["b"] / (second["a"] + second["b"]) == pytest.approx(0.75, abs=0.08)


def test_cpu_limit_added_mid_run_takes_effect(setup):
    manager, sched = setup
    c = manager.create("c", attrs=fixed_share_attrs(0.5))
    entity = NotifyEntity("e", c)
    sched.attach(entity)
    c.charge_cpu(3_000.0)
    assert not sched.capped_out(c)
    assert sched.pick(0.0) is entity
    # Impose a 30% window cap; the 30% already burned exhausts it.
    manager.set_attributes(c, fixed_share_attrs(0.5, cpu_limit=0.3))
    assert sched.capped_out(c)
    assert sched.pick(0.0) is None
    # Lifting the cap restores the entity without a window roll.
    manager.set_attributes(c, fixed_share_attrs(0.5))
    assert sched.pick(0.0) is entity


def test_reparent_moves_entity_to_new_top_level_group(setup):
    manager, sched = setup
    strong = manager.create("strong", attrs=fixed_share_attrs(0.8))
    weak = manager.create("weak", attrs=fixed_share_attrs(0.2))
    leaf = manager.create("leaf", parent=weak)
    mover = NotifyEntity("m", leaf)
    rival = NotifyEntity("r", strong)
    sched.attach(mover)
    sched.attach(rival)
    before = drain(sched, 200)
    assert before["r"] > before["m"]  # charged to the 0.2 group
    # Reparent the leaf under the strong group: both entities now draw
    # from the same 0.8 container and must round-robin evenly.
    manager.set_parent(leaf, strong)
    after = drain(sched, 200, start=200_000.0)
    assert after["m"] == pytest.approx(after["r"], abs=2)


def test_reparent_under_capped_parent_throttles(setup):
    manager, sched = setup
    capped = manager.create("capped", attrs=fixed_share_attrs(0.3, cpu_limit=0.3))
    free = manager.create("free", attrs=fixed_share_attrs(0.7))
    leaf = manager.create("leaf", parent=free)
    entity = NotifyEntity("e", leaf)
    sched.attach(entity)
    capped.charge_cpu(3_000.0)  # cap budget already spent
    assert sched.pick(0.0) is entity  # not under the cap yet
    manager.set_parent(leaf, capped)
    # The cached limit chain must be rebuilt: leaf now inherits the cap.
    assert sched.capped_out(leaf)
    assert sched.pick(0.0) is None


def test_rebind_changes_layer_immediately(setup):
    manager, sched = setup
    high = manager.create("high", attrs=timeshare_attrs(priority=9))
    low = manager.create("low", attrs=timeshare_attrs(priority=1))
    mid = manager.create("mid", attrs=timeshare_attrs(priority=5))
    mover = NotifyEntity("m", low)
    steady = NotifyEntity("s", mid)
    sched.attach(mover)
    sched.attach(steady)
    assert sched.pick(0.0) is steady
    mover.container = high  # fires sched_note_change
    assert sched.pick(0.0) is mover


def test_group_weight_re_resolves_after_share_change(setup):
    """Regression: memoized weights must flush on attribute replacement."""
    manager, sched = setup
    fixed = manager.create("fixed", attrs=fixed_share_attrs(0.4))
    ts = manager.create("ts", attrs=timeshare_attrs(weight=1.0))
    assert sched.group_weight(fixed) == pytest.approx(0.4)
    assert sched.group_weight(ts) == pytest.approx(0.6)
    manager.set_attributes(fixed, fixed_share_attrs(0.1))
    assert sched.group_weight(fixed) == pytest.approx(0.1)
    assert sched.group_weight(ts) == pytest.approx(0.9)


def test_group_weight_re_resolves_after_sibling_created(setup):
    manager, sched = setup
    ts1 = manager.create("ts1", attrs=timeshare_attrs(weight=1.0))
    assert sched.group_weight(ts1) == pytest.approx(1.0)
    manager.create("ts2", attrs=timeshare_attrs(weight=1.0))
    assert sched.group_weight(ts1) == pytest.approx(0.5)
