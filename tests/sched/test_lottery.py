"""Lottery scheduler: proportional share by tickets."""

import pytest

from repro.core.operations import ContainerManager
from repro.sched.lottery import DEFAULT_TICKETS, LotteryScheduler
from repro.sim.rng import SeededRng

from tests.sched.test_container_sched import FakeEntity


@pytest.fixture
def setup():
    manager = ContainerManager()
    sched = LotteryScheduler(SeededRng(99), quantum_us=1000.0)
    return manager, sched


def test_share_tracks_tickets(setup):
    manager, sched = setup
    rich = FakeEntity("rich", manager.create("rich"))
    poor = FakeEntity("poor", manager.create("poor"))
    LotteryScheduler.set_tickets(rich.container, 300)
    LotteryScheduler.set_tickets(poor.container, 100)
    sched.attach(rich)
    sched.attach(poor)
    wins = {"rich": 0, "poor": 0}
    for _ in range(4000):
        wins[sched.pick(0.0).name] += 1
    share = wins["rich"] / 4000
    assert share == pytest.approx(0.75, abs=0.04)


def test_default_tickets_used_without_state(setup):
    manager, sched = setup
    entity = FakeEntity("e", manager.create("c"))
    assert LotteryScheduler.tickets_of(entity) == DEFAULT_TICKETS


def test_set_tickets_validates():
    manager = ContainerManager()
    c = manager.create("c")
    with pytest.raises(ValueError):
        LotteryScheduler.set_tickets(c, 0)


def test_single_runnable_always_picked(setup):
    manager, sched = setup
    only = FakeEntity("only", manager.create("only"))
    sched.attach(only)
    for _ in range(50):
        assert sched.pick(0.0) is only


def test_no_runnable_returns_none(setup):
    _manager, sched = setup
    assert sched.pick(0.0) is None


def test_deterministic_given_seed():
    manager = ContainerManager()
    names1 = _run_sequence(manager, seed=5)
    names2 = _run_sequence(ContainerManager(), seed=5)
    assert names1 == names2


def _run_sequence(manager, seed):
    sched = LotteryScheduler(SeededRng(seed))
    a = FakeEntity("a", manager.create("a"))
    b = FakeEntity("b", manager.create("b"))
    sched.attach(a)
    sched.attach(b)
    return [sched.pick(0.0).name for _ in range(30)]
