"""The whole-program analyzer: seeded defect fixtures for each rule
family, clean-pattern fixtures, driver exit codes, and the clean-tree
gate (`python -m repro analyze` must exit 0 on HEAD)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.analyze import (
    analyze_graph,
    run_analyze,
    run_check,
)
from repro.analysis.charging import (
    PRIMITIVES,
    ConsumingPrimitive,
    check_charging,
)
from repro.analysis.graph import ModuleGraph
from repro.analysis.rules import RULES
from repro.analysis.smp_rules import check_smp
from repro.analysis.units import check_units

# ---------------------------------------------------------------------------
# CHG2xx: charging completeness
# ---------------------------------------------------------------------------


def _charging(sources, qualname="Device.consume", rel="dev.py"):
    graph = ModuleGraph.from_sources(sources)
    primitive = ConsumingPrimitive(
        rel=rel,
        qualname=qualname,
        dimension="disk",
        description="fixture consumption",
        sanitizer_check="disk-busy-split",
    )
    return check_charging(graph, primitives=(primitive,))


def test_chg201_no_sink_reachable_anywhere():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, amount_us):\n"
                "        self.busy_us += amount_us\n"
                "        self.log(amount_us)\n"
                "    def log(self, amount_us):\n"
                "        print(amount_us)\n"
            )
        }
    )
    assert [v.rule for v in violations] == ["CHG201"]


def test_chg201_clean_when_charge_is_reached_through_another_module():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, amount_us):\n"
                "        self.busy_us += amount_us\n"
                "        book(self, amount_us)\n"
            ),
            "ledger.py": (
                "def book(device, amount_us):\n"
                "    device.container.usage.charge_disk(amount_us, 0)\n"
            ),
        }
    )
    assert [v.rule for v in violations] == ["CHG202"] or violations == [], (
        "reachability must be satisfied via ledger.py"
    )
    # The CHG202 (body-local) finding is expected: consume() itself
    # has no direct sink on its fall-through path -- but CHG201 must
    # NOT fire, because the charge *is* reachable.
    assert all(v.rule != "CHG201" for v in violations)


def test_chg202_branch_escapes_without_charging():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"
                "        self.busy_us += req.service_us\n"
                "        if req.container is not None:\n"
                "            req.container.usage.charge_disk(req.service_us, 0)\n"
                "            return True\n"
                "        return True\n"  # anonymous path: leaks
            )
        }
    )
    assert [v.rule for v in violations] == ["CHG202"]
    assert violations[0].line == 7


def test_chg202_fall_off_the_end_uncharged():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"
                "        self.busy_us += req.service_us\n"
                "        self.notify(req)\n"
                "    def notify(self, req):\n"
                "        req.done = True\n"
                "        self.charge(req)\n"
                "    def charge(self, req):\n"
                "        req.container.usage.charge_disk(req.service_us, 0)\n"
            )
        }
    )
    # Reachable (no CHG201), but the primitive's own body never sinks.
    assert [v.rule for v in violations] == ["CHG202"]


def test_chg202_clean_if_else_both_book():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"
                "        if req.container is not None:\n"
                "            req.container.usage.charge_disk(req.service_us, 0)\n"
                "        else:\n"
                "            self.unaccounted_us += req.service_us\n"
            )
        }
    )
    assert violations == []


def test_chg202_rejection_paths_are_exempt():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"
                "        if req.size_bytes < 0:\n"
                "            raise ValueError('bad')\n"
                "        if req.size_bytes > self.capacity_bytes:\n"
                "            return False\n"
                "        if req.denied:\n"
                "            return None\n"
                "        self.unaccounted_us += req.service_us\n"
            )
        }
    )
    assert violations == []


def test_chg202_sink_inside_condition_counts():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"
                "        if not self.accountant.try_charge(req.owner, req.size_bytes):\n"
                "            return False\n"
                "        self.resident += 1\n"
                "        return True\n"
            )
        }
    )
    assert violations == []


def test_chg202_charge_inside_ancestor_loop_counts():
    violations = _charging(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, container, size_bytes):\n"
                "        for node in ancestors_and_self(container):\n"
                "            node.usage.charge_memory(size_bytes)\n"
                "        return True\n"
            )
        }
    )
    assert violations == []


def test_chg201_flags_a_registry_entry_the_tree_lost():
    graph = ModuleGraph.from_sources({"dev.py": "X = 1\n"})
    primitive = ConsumingPrimitive(
        rel="dev.py",
        qualname="Device.consume",
        dimension="disk",
        description="gone",
        sanitizer_check=None,
    )
    violations = check_charging(graph, primitives=(primitive,))
    assert [v.rule for v in violations] == ["CHG201"]
    assert "not found" in violations[0].message


# ---------------------------------------------------------------------------
# SMP3xx: shard protocol
# ---------------------------------------------------------------------------


def _smp(sources):
    return check_smp(ModuleGraph.from_sources(sources))


def test_smp301_discarded_pick_result():
    violations = _smp(
        {
            "kernel/dispatch.py": (
                "def kick(scheduler, now):\n"
                "    scheduler.pick_for_cpu(now, 0)\n"
            )
        }
    )
    assert "SMP301" in [v.rule for v in violations]


def test_smp302_pick_without_reachable_hand_back():
    violations = _smp(
        {
            "kernel/dispatch.py": (
                "def steal(scheduler, now):\n"
                "    entity = scheduler.pick_for_cpu(now, 1)\n"
                "    return entity\n"
            )
        }
    )
    assert [v.rule for v in violations] == ["SMP302"]


def test_smp302_clean_when_hand_back_is_reachable():
    violations = _smp(
        {
            "kernel/dispatch.py": (
                "def dispatch(scheduler, now):\n"
                "    entity = scheduler.pick_for_cpu(now, 0)\n"
                "    if entity is None:\n"
                "        return None\n"
                "    finish(scheduler, entity, now)\n"
                "    return entity\n"
                "\n"
                "def finish(scheduler, entity, now):\n"
                "    scheduler.on_slice_end(entity, 0, now)\n"
            )
        }
    )
    assert violations == []


def test_smp302_hand_back_in_another_module_does_not_count():
    violations = _smp(
        {
            "kernel/dispatch.py": (
                "def dispatch(scheduler, now):\n"
                "    entity = scheduler.pick_for_cpu(now, 0)\n"
                "    helper(scheduler, entity)\n"
                "    return entity\n"
            ),
            "other.py": (
                "def helper(scheduler, entity):\n"
                "    scheduler.on_slice_end(entity, 0, 0.0)\n"
            ),
        }
    )
    assert [v.rule for v in violations] == ["SMP302"]


def test_smp303_global_state_write_outside_mediation_points():
    violations = _smp(
        {
            "apps/tuner.py": (
                "def boost(state):\n"
                "    state.pass_value = 0.0\n"
                "    state._group_vtime += 1.0\n"
            )
        }
    )
    assert [v.rule for v in violations] == ["SMP303", "SMP303"]


def test_smp303_clean_at_the_mediation_points():
    for rel in ("sched/container_sched.py", "core/container.py",
                "io/scheduler.py"):
        violations = _smp(
            {rel: "def charge(state):\n    state.pass_value += 1.0\n"}
        )
        assert violations == [], rel


def test_smp304_shard_internals_touched_outside_sched():
    violations = _smp(
        {
            "obs/probe.py": (
                "def peek(scheduler):\n"
                "    return scheduler._shards[0].layer_heaps\n"
            )
        }
    )
    assert sorted(v.rule for v in violations) == ["SMP304", "SMP304"]


def test_smp304_clean_inside_sched():
    violations = _smp(
        {
            "sched/container_sched.py": (
                "def rebuild(self):\n"
                "    self._shards[0].layer_heaps.clear()\n"
            )
        }
    )
    assert violations == []


# ---------------------------------------------------------------------------
# UNIT4xx: dimensional analysis
# ---------------------------------------------------------------------------


def _units(source, rel="m.py"):
    return check_units(ModuleGraph.from_sources({rel: source}))


def test_unit401_mixed_addition():
    violations = _units(
        "def f(elapsed_us, size_bytes):\n"
        "    return elapsed_us + size_bytes\n"
    )
    assert [v.rule for v in violations] == ["UNIT401"]


def test_unit401_mixed_augmented_assignment():
    violations = _units(
        "def f(ledger, size_bytes):\n"
        "    ledger.cpu_us += size_bytes\n"
    )
    assert [v.rule for v in violations] == ["UNIT401"]


def test_unit402_unit_dropping_assignment():
    violations = _units(
        "def f(size_bytes):\n    total_us = size_bytes\n    return total_us\n"
    )
    assert [v.rule for v in violations] == ["UNIT402"]


def test_unit403_mixed_comparison():
    violations = _units(
        "def f(timeout_ms, deadline_us):\n"
        "    return timeout_ms < deadline_us\n"
    )
    assert [v.rule for v in violations] == ["UNIT403"]


def test_units_single_binding_local_inherits_dimension():
    violations = _units(
        "def f(start_us, size_bytes):\n"
        "    begin = start_us\n"
        "    return begin + size_bytes\n"
    )
    assert [v.rule for v in violations] == ["UNIT401"]


@pytest.mark.parametrize(
    "source",
    [
        # Same dimension: fine.
        "def f(a_us, b_us):\n    return a_us + b_us\n",
        # Constants are wildcards.
        "def f(a_us):\n    return a_us + 5.0\n",
        "def f(a_us):\n    return a_us > 0\n",
        # Multiplication/division launder dimensions (conversions).
        "def f(per_kb_us, size_bytes):\n"
        "    return per_kb_us * (size_bytes / 1024.0)\n",
        "def f(size_kb):\n    size_bytes = size_kb * 1024\n"
        "    return size_bytes\n",
        # _per_ names are rates, not their suffix dimension.
        "def f(cost_per_kb_us, budget_us):\n"
        "    return cost_per_kb_us + budget_us\n",
        # min/max pass through a single consistent dimension.
        "def f(a_us, b_us, size_bytes):\n"
        "    return min(a_us, b_us) + max(a_us, 0.0)\n",
        # Reassigned locals are not inferred.
        "def f(a_us, size_bytes):\n"
        "    x = a_us\n    x = size_bytes\n    return x + size_bytes\n",
    ],
)
def test_units_clean_patterns(source):
    assert _units(source) == []


def test_units_annotation_declares_a_dimension():
    violations = _units(
        "# analysis: unit[budget=us]\n"
        "def f(budget, size_bytes):\n"
        "    return budget + size_bytes\n"
    )
    assert [v.rule for v in violations] == ["UNIT401"]


def test_units_annotation_clears_a_suffix_dimension():
    assert (
        _units(
            "# analysis: unit[blob_us=none]\n"
            "def f(blob_us, size_bytes):\n"
            "    return blob_us + size_bytes\n"
        )
        == []
    )


# ---------------------------------------------------------------------------
# Catalogue coverage (mirror of the lint's meta-test)
# ---------------------------------------------------------------------------


def test_every_analyzer_rule_has_a_trigger_fixture_here():
    analyzer_rules = {r for r in RULES if not r.startswith("DET")}
    assert analyzer_rules == {
        "CHG201",
        "CHG202",
        "SMP301",
        "SMP302",
        "SMP303",
        "SMP304",
        "UNIT401",
        "UNIT402",
        "UNIT403",
    }


def test_acceptance_matrix_detects_each_seeded_defect_class():
    """The ISSUE's acceptance floor: >=2 uncharged-consumption variants,
    >=2 shard-protocol violations, >=2 unit-mixing bugs, one graph."""
    graph = ModuleGraph.from_sources(
        {
            "dev.py": (
                "class Device:\n"
                "    def consume(self, req):\n"  # CHG201: no sink anywhere
                "        self.busy_us += req.service_us\n"
            ),
            "mem.py": (
                "class Pool:\n"
                "    def admit(self, owner, size_bytes):\n"
                "        if owner is not None:\n"
                "            owner.usage.charge_memory(size_bytes)\n"
                "            return True\n"
                "        return True\n"  # CHG202: anonymous path leaks
            ),
            "kernel/loop.py": (
                "def kick(scheduler, now):\n"
                "    scheduler.pick_for_cpu(now, 0)\n"  # SMP301 (+302)
            ),
            "apps/meddler.py": (
                "def meddle(state, size_bytes, deadline_us):\n"
                "    state.pass_value = 0.0\n"  # SMP303
                "    total_us = size_bytes\n"  # UNIT402
                "    return deadline_us < size_bytes\n"  # UNIT403
            ),
        }
    )
    primitives = (
        ConsumingPrimitive("dev.py", "Device.consume", "disk", "f", None),
        ConsumingPrimitive("mem.py", "Pool.admit", "memory", "f", None),
    )
    rules = [v.rule for v in check_charging(graph, primitives=primitives)]
    rules += [v.rule for v in check_smp(graph)]
    rules += [v.rule for v in check_units(graph)]
    assert len([r for r in rules if r.startswith("CHG")]) >= 2
    assert len([r for r in rules if r.startswith("SMP")]) >= 2
    assert len([r for r in rules if r.startswith("UNIT")]) >= 2


# ---------------------------------------------------------------------------
# Driver: exit codes, JSON format, clean-tree gates
# ---------------------------------------------------------------------------

_DIRTY_TREE = {
    "apps/bad.py": (
        "def f(state, size_bytes):\n"
        "    state.pass_value = 1.0\n"
        "    total_us = size_bytes\n"
    )
}


def _materialize(tmp_path, sources) -> Path:
    root = tmp_path / "tree"
    for rel, source in sources.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def test_run_analyze_exit_one_on_violations(tmp_path, capsys):
    root = _materialize(tmp_path, _DIRTY_TREE)
    rc = run_analyze(root=root, baseline_path=tmp_path / "b.json")
    assert rc == 1
    out = capsys.readouterr().out
    assert "SMP303" in out and "UNIT402" in out


def test_run_analyze_json_format(tmp_path, capsys):
    root = _materialize(tmp_path, _DIRTY_TREE)
    rc = run_analyze(
        root=root, baseline_path=tmp_path / "b.json", fmt="json"
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    rules = {v["rule"] for v in payload["new"]}
    assert {"SMP303", "UNIT402"} <= rules


def test_update_baseline_requires_reasons_then_absorbs(tmp_path, capsys):
    root = _materialize(tmp_path, _DIRTY_TREE)
    baseline = tmp_path / "b.json"
    # First pass: entries are written but unreasoned -> still failing.
    rc = run_analyze(
        update_baseline=True, root=root, baseline_path=baseline
    )
    assert rc == 1
    assert 'need a written' in capsys.readouterr().out
    entries = json.loads(baseline.read_text())
    assert entries and all(e["reason"] == "" for e in entries)
    # An unreasoned baseline absorbs nothing.
    assert run_analyze(root=root, baseline_path=baseline) == 1
    # Write reasons; now the baseline absorbs and the tree passes.
    for entry in entries:
        entry["reason"] = "fixture: deliberately grandfathered"
    baseline.write_text(json.dumps(entries))
    assert run_analyze(root=root, baseline_path=baseline) == 0
    # Re-updating preserves the reasons.
    rc = run_analyze(
        update_baseline=True, root=root, baseline_path=baseline
    )
    assert rc == 0
    kept = json.loads(baseline.read_text())
    assert all(
        e["reason"] == "fixture: deliberately grandfathered" for e in kept
    )


def test_head_tree_is_clean_in_process():
    assert run_analyze() == 0


def test_head_tree_check_combines_lint_and_analyze():
    assert run_check() == 0


def test_cli_analyze_exits_zero_on_head():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["new"] == []


def test_cli_rules_lists_the_analyzer_catalogue():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "--rules"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    for rule_id in ("CHG201", "SMP302", "UNIT401"):
        assert rule_id in proc.stdout
    assert "DET101" not in proc.stdout


def test_primitive_registry_matches_the_real_tree():
    graph = ModuleGraph.load()
    for primitive in PRIMITIVES:
        assert graph.function(primitive.rel, primitive.qualname) is not None, (
            f"PRIMITIVES is stale: {primitive.rel}:{primitive.qualname}"
        )
