"""Determinism lint: seeded rule fixtures, suppression mechanics, and
the clean-tree gate (`python -m repro lint` must exit 0 on HEAD)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint
from repro.analysis.rules import RULES, describe

# ---------------------------------------------------------------------------
# Rule fixtures: each snippet must trigger exactly its rule.
# ---------------------------------------------------------------------------

TRIGGER_FIXTURES = [
    # DET101: wall clocks, through every import spelling.
    ("DET101", "import time\n\ndef f():\n    return time.time()\n"),
    ("DET101", "import time as t\n\ndef f():\n    return t.monotonic()\n"),
    (
        "DET101",
        "from time import perf_counter\n\ndef f():\n"
        "    return perf_counter()\n",
    ),
    (
        "DET101",
        "from time import perf_counter as pc\n\ndef f():\n"
        "    return pc()\n",
    ),
    (
        "DET101",
        "from datetime import datetime\n\ndef f():\n"
        "    return datetime.now()\n",
    ),
    (
        "DET101",
        "import datetime\n\ndef f():\n"
        "    return datetime.datetime.utcnow()\n",
    ),
    # DET102: the global random module.
    ("DET102", "import random\n\ndef f():\n    return random.random()\n"),
    ("DET102", "import random\n\ndef f():\n    return random.Random(1)\n"),
    ("DET102", "from random import choice\n"),
    # DET103: OS entropy.
    ("DET103", "import os\n\ndef f():\n    return os.urandom(16)\n"),
    ("DET103", "import uuid\n\ndef f():\n    return uuid.uuid4()\n"),
    (
        "DET103",
        "import secrets\n\ndef f():\n    return secrets.token_hex(8)\n",
    ),
    # DET104: salted builtin hash.
    ("DET104", "def f(name):\n    return hash(name) % 64\n"),
    # DET105: hash-ordered set iteration.
    ("DET105", "def f():\n    for x in {1, 2, 3}:\n        print(x)\n"),
    (
        "DET105",
        "def f(items):\n    s = set(items)\n"
        "    for x in s:\n        print(x)\n",
    ),
    ("DET105", "def f(items):\n    return [x for x in set(items)]\n"),
    ("DET105", "def f(items):\n    return list({i + 1 for i in items})\n"),
    (
        "DET105",
        "SEEN = {'a', 'b'}\n\ndef f():\n"
        "    return tuple(SEEN)\n",
    ),
    # DET106: stray binary heaps (fixtures lint as a non-exempt path).
    ("DET106", "import heapq\n"),
    ("DET106", "from heapq import heappush\n"),
]

CLEAN_FIXTURES = [
    # Simulated time is the deterministic clock.
    "def f(sim):\n    return sim.now\n",
    # Seeded RNG use is the sanctioned pattern.
    "def f(rng):\n    return rng.uniform(0.0, 1.0)\n",
    # sorted() launders set order deterministically.
    "def f(items):\n    s = set(items)\n    return sorted(s)\n",
    "def f(items):\n    for x in sorted(set(items)):\n        print(x)\n",
    # Membership tests never observe ordering.
    "def f(items, x):\n    s = set(items)\n    return x in s\n",
    # A name rebound to a sorted list is no longer a bare set.
    "def f(items):\n    s = set(items)\n    s = sorted(s)\n"
    "    return [x for x in s]\n",
    # hashlib digests are stable, unlike hash().
    "import hashlib\n\ndef f(data):\n"
    "    return hashlib.sha256(data).hexdigest()\n",
    # dict iteration is insertion-ordered, hence deterministic.
    "def f(mapping):\n    return [k for k in mapping]\n",
]


@pytest.mark.parametrize("rule,source", TRIGGER_FIXTURES)
def test_fixture_triggers_its_rule(rule, source):
    violations = lint.lint_source(source, "fixture.py")
    assert [v.rule for v in violations] == [rule], (
        f"expected exactly one {rule} for:\n{source}\n"
        f"got: {[(v.rule, v.message) for v in violations]}"
    )


@pytest.mark.parametrize("source", CLEAN_FIXTURES)
def test_clean_fixture_passes(source):
    assert lint.lint_source(source, "fixture.py") == []


def test_every_rule_has_a_trigger_fixture():
    # The analyzer families (CHG/SMP/UNIT) have their own fixture
    # meta-test in test_analyze.py; the lint owns the DET family.
    covered = {rule for rule, _src in TRIGGER_FIXTURES}
    det_rules = {r for r in RULES if r.startswith("DET")}
    assert covered == det_rules, "each lint rule needs a fixture"


def test_rule_catalogue_names_what_breaks():
    for rule_id in RULES:
        text = describe(rule_id)
        assert rule_id in text
        # Rationale must tie the rule to a concrete artifact.
        assert any(
            word in text for word in ("cache", "digest", "ledger")
        ), f"{rule_id} rationale names no protected artifact"


# ---------------------------------------------------------------------------
# Suppression mechanics
# ---------------------------------------------------------------------------


def test_inline_pragma_requires_matching_rule_id():
    flagged = "import time\n\ndef f():\n    return time.time()\n"
    waived = flagged.replace(
        "time.time()", "time.time()  # det: allow[DET101]"
    )
    wrong_id = flagged.replace(
        "time.time()", "time.time()  # det: allow[DET104]"
    )
    assert lint.lint_source(flagged, "x.py") != []
    assert lint.lint_source(waived, "x.py") == []
    # A pragma naming the wrong rule waives nothing.
    assert [v.rule for v in lint.lint_source(wrong_id, "x.py")] == ["DET101"]


def test_file_allowlist_waives_only_named_rules():
    source = (
        "import time\nimport random\n\n"
        "def f():\n    return time.time() + random.random()\n"
    )
    only_wall = lint.lint_source(source, "bench.py", allowed={"DET101"})
    assert [v.rule for v in only_wall] == ["DET102"]


def test_allowlist_entries_all_name_reasons():
    for path, rules in lint.FILE_ALLOWLIST.items():
        for rule_id, reason in rules.items():
            assert rule_id in RULES, f"{path} allowlists unknown {rule_id}"
            assert len(reason) > 10, f"{path}:{rule_id} needs a real reason"


# ---------------------------------------------------------------------------
# DET106: stray heaps
# ---------------------------------------------------------------------------


def test_det106_exempts_sim_and_sched_subtrees():
    source = "import heapq\n\ndef f(h):\n    return heapq.heappop(h)\n"
    assert lint.lint_source(source, "sim/events.py") == []
    assert lint.lint_source(source, "sched/container_sched.py") == []
    flagged = lint.lint_source(source, "kernel/timers.py")
    # Both the import and the heappop() call are flagged.
    assert [v.rule for v in flagged] == ["DET106", "DET106"]


def test_det106_flags_aliased_heap_calls():
    source = "import heapq as hq\n\ndef f(h):\n    return hq.heappop(h)\n"
    flagged = lint.lint_source(source, "apps/queueing.py")
    assert [v.rule for v in flagged] == ["DET106", "DET106"]


def test_det106_allowlisted_for_kernel_events_with_reason():
    # kernel/events.py hosts the IOEvent priority queue, which carries
    # its own seq tie-breaker; its waiver must stay narrowly scoped.
    assert "DET106" in lint.FILE_ALLOWLIST["kernel/events.py"]
    source = "import heapq\n"
    allowed = lint.FILE_ALLOWLIST["kernel/events.py"]
    assert lint.lint_source(source, "kernel/events.py", allowed) == []


# ---------------------------------------------------------------------------
# Baseline mechanics
# ---------------------------------------------------------------------------


def _tree(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "pkg"
    root.mkdir()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def test_baseline_grandfathers_existing_violations(tmp_path):
    root = _tree(
        tmp_path,
        {"old.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    violations = lint.lint_tree(root=root, allowlist={})
    assert len(violations) == 1
    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(violations, baseline_path)
    baseline = lint.load_baseline(baseline_path)
    new, grandfathered = lint.split_by_baseline(violations, baseline)
    assert new == [] and len(grandfathered) == 1


def test_baseline_does_not_absorb_new_violations(tmp_path):
    root = _tree(
        tmp_path,
        {"old.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(
        lint.lint_tree(root=root, allowlist={}), baseline_path
    )
    # A *second* copy of the same pattern is a new violation: baseline
    # entries absorb matches one-for-one.
    (root / "old.py").write_text(
        "import time\n\ndef f():\n    return time.time()\n\n"
        "def g():\n    return time.time()\n",
        encoding="utf-8",
    )
    violations = lint.lint_tree(root=root, allowlist={})
    new, grandfathered = lint.split_by_baseline(
        violations, lint.load_baseline(baseline_path)
    )
    assert len(grandfathered) == 1 and len(new) == 1


def test_baseline_survives_line_shifts(tmp_path):
    root = _tree(
        tmp_path,
        {"old.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(
        lint.lint_tree(root=root, allowlist={}), baseline_path
    )
    # Unrelated edits above the violation must not churn the baseline.
    (root / "old.py").write_text(
        "import time\n\nPADDING = 1\n\n\ndef f():\n    return time.time()\n",
        encoding="utf-8",
    )
    new, grandfathered = lint.split_by_baseline(
        lint.lint_tree(root=root, allowlist={}),
        lint.load_baseline(baseline_path),
    )
    assert new == [] and len(grandfathered) == 1


def test_missing_baseline_file_is_empty():
    assert lint.load_baseline(Path("/nonexistent/baseline.json")) == {}


# ---------------------------------------------------------------------------
# The clean-tree gate
# ---------------------------------------------------------------------------


def test_head_tree_is_clean_in_process():
    """No new violations in the tree as imported (library-level gate)."""
    new, _grandfathered = lint.split_by_baseline(
        lint.lint_tree(), lint.load_baseline()
    )
    assert new == [], "\n".join(v.render() for v in new)


def test_cli_lint_exits_zero_on_head():
    """`python -m repro lint` is the CI entry point; it must pass."""
    env = dict(os.environ)
    src = str(Path(lint.__file__).resolve().parents[3])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "lint: OK" in proc.stdout


def test_cli_lint_fails_on_violating_tree(tmp_path):
    """Exit is non-zero when a violation fixture is in the linted tree."""
    root = _tree(
        tmp_path,
        {"bad.py": "import random\n\ndef f():\n    return random.random()\n"},
    )
    code = lint.run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert code == 1


# ---------------------------------------------------------------------------
# Unwaivable rules (the obs/ wall-clock ban)
# ---------------------------------------------------------------------------

WALL_CLOCK_SRC = (
    "import time\n\ndef f():\n"
    "    return time.time()  # det: allow[DET101]\n"
)


def test_obs_wall_clock_ignores_inline_pragma():
    """Under obs/ the pragma that works everywhere else is ignored."""
    assert lint.lint_source(WALL_CLOCK_SRC, "metrics/x.py") == []
    violations = lint.lint_source(WALL_CLOCK_SRC, "obs/export.py")
    assert [v.rule for v in violations] == ["DET101"]


def test_obs_wall_clock_ignores_allowlist():
    violations = lint.lint_source(
        WALL_CLOCK_SRC, "obs/export.py", allowed=["DET101"]
    )
    assert [v.rule for v in violations] == ["DET101"]
    # Waivable rules in obs/ still honour suppressions.
    assert lint.lint_source(
        "import random\n", "obs/export.py", allowed=["DET102"]
    ) == []


def test_obs_wall_clock_cannot_be_baselined(tmp_path):
    """A stale baseline fingerprint must not absorb an unwaivable
    violation, and --update-baseline refuses to record one."""
    root = _tree(
        tmp_path,
        {"obs/clock.py": "import time\n\ndef f():\n    return time.time()\n"},
    )
    violations = lint.lint_tree(root=root, allowlist={})
    baseline_path = tmp_path / "baseline.json"
    lint.write_baseline(violations, baseline_path)  # hand-forged baseline
    new, grandfathered = lint.split_by_baseline(
        violations, lint.load_baseline(baseline_path)
    )
    assert grandfathered == []
    assert [v.rule for v in new] == ["DET101"]
    # The CLI update path filters it out and fails the build.
    code = lint.run_lint(
        update_baseline=True, root=root, baseline_path=baseline_path
    )
    assert code == 1
    assert lint.load_baseline(baseline_path) == {}


def test_unwaivable_rules_lookup():
    assert "DET101" in lint.unwaivable_rules("obs/spans.py")
    assert "DET101" in lint.unwaivable_rules("obs/deep/nested.py")
    assert lint.unwaivable_rules("kernel/cpu.py") == frozenset()
    # Both nondeterminism-source families are absolute under obs/
    # (wall clocks and unseeded RNG would both break the dashboard
    # byte-identity gate); other rules stay waivable.
    assert "DET102" in lint.unwaivable_rules("obs/spans.py")
    assert "DET105" not in lint.unwaivable_rules("obs/spans.py")
