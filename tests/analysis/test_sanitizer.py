"""Charging-conservation sanitizer: clean runs stay clean and
byte-identical; tampering with any ledger is detected."""

import pytest

from repro import Host, SystemMode
from repro.analysis import sanitizer
from repro.analysis.sanitizer import ChargingSanitizer
from repro.kernel.cpu import InterruptJob
from repro.syscall import api


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test sees only the sanitizers it installs."""
    sanitizer.drain_installed()
    yield
    sanitizer.drain_installed()


def _busy_host(sanitize=True, seed=7):
    """A host with real CPU traffic: two compute threads plus periodic
    interrupts, some charged, some unaccounted."""
    host = Host(mode=SystemMode.RC, seed=seed, sanitize=sanitize)
    container = host.kernel.containers.create("serving")

    def program():
        for _ in range(20):
            yield api.Compute(250.0)
            yield api.Sleep(50.0)

    host.kernel.spawn_process("a", program)
    host.kernel.spawn_process("b", program)
    for i in range(10):
        charge = container if i % 2 == 0 else None
        host.sim.at(
            100.0 + i * 400.0,
            lambda c=charge: host.kernel.cpu.post_hard_interrupt(
                InterruptJob(cost_us=20.0, action=lambda: None, charge=c)
            ),
        )
    return host


# ---------------------------------------------------------------------------
# Activation paths
# ---------------------------------------------------------------------------


def test_flag_installs_sanitizer():
    host = Host(sanitize=True)
    assert isinstance(host.kernel.sanitizer, ChargingSanitizer)
    assert host.kernel.cpu.sanitizer is host.kernel.sanitizer
    assert sanitizer.installed() == [host.kernel.sanitizer]


def test_default_host_has_no_sanitizer():
    host = Host()
    assert host.kernel.sanitizer is None
    assert host.kernel.cpu.sanitizer is None


def test_env_var_installs_sanitizer(monkeypatch):
    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "1")
    assert sanitizer.env_enabled()
    host = Host()
    assert isinstance(host.kernel.sanitizer, ChargingSanitizer)


def test_env_var_zero_means_off(monkeypatch):
    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "0")
    assert not sanitizer.env_enabled()
    assert Host().kernel.sanitizer is None


def test_drain_installed_empties_registry():
    Host(sanitize=True)
    Host(sanitize=True)
    assert len(sanitizer.drain_installed()) == 2
    assert sanitizer.installed() == []


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------


def test_clean_run_has_no_violations():
    host = _busy_host()
    host.run(seconds=0.01)
    checker = host.kernel.sanitizer
    assert checker.slices_checked > 0
    assert checker.finish() == []
    assert "OK" in checker.summary()


def test_finish_is_idempotent():
    host = _busy_host()
    host.run(seconds=0.01)
    checker = host.kernel.sanitizer
    first = checker.finish()
    sweeps = checker.sweeps
    assert checker.finish() == first
    assert checker.sweeps == sweeps


def test_sanitized_run_is_byte_identical():
    """The sanitizer observes; it must not perturb the event stream."""

    def digest(sanitize):
        host = _busy_host(sanitize=sanitize, seed=13)
        end = host.run(seconds=0.01)
        acct = host.kernel.cpu.accounting
        return (
            end,
            host.sim.events_dispatched,
            acct.total_cpu_us,
            acct.interrupt_cpu_us,
            acct.unaccounted_cpu_us,
            acct.context_switches,
        )

    assert digest(True) == digest(False)


def test_interrupt_and_entity_charges_both_mirrored():
    host = _busy_host()
    host.run(seconds=0.01)
    checker = host.kernel.sanitizer
    assert checker._charged_entity_us > 0
    assert checker._charged_interrupt_us > 0
    assert checker._unaccounted_us > 0


# ---------------------------------------------------------------------------
# Violation detection (each check must actually fire)
# ---------------------------------------------------------------------------


def _checks(violations):
    return {v.check for v in violations}


def test_detects_charge_on_destroyed_container():
    host = Host(mode=SystemMode.RC, seed=3, sanitize=True)
    victim = host.kernel.containers.create("victim")
    host.kernel.containers.release(victim)
    assert not victim.alive
    host.kernel.cpu.post_hard_interrupt(
        InterruptJob(cost_us=5.0, action=lambda: None, charge=victim)
    )
    host.run(until_us=100.0)
    checks = _checks(host.kernel.sanitizer.finish())
    assert "dead-container-charge" in checks
    # The charge landed on a ledger outside all_containers(), so the
    # conservation sweep must notice it leaked too.
    assert "ledger-conservation" in checks


def test_detects_accounting_counter_drift():
    host = _busy_host()
    host.run(seconds=0.002)
    # Simulate a code path that books CPU around the choke point.
    host.kernel.cpu.accounting.total_cpu_us += 123.0
    host.run(seconds=0.002)
    assert "accounting-total" in _checks(host.kernel.sanitizer.finish())


def test_detects_ledger_tampering():
    host = _busy_host()
    host.run(seconds=0.002)
    container = host.kernel.containers.create("tampered")
    container.usage.cpu_network_us = container.usage.cpu_us + 100.0
    assert "ledger-integrity" in _checks(host.kernel.sanitizer.finish())


def test_detects_scheduler_charge_mismatch():
    host = _busy_host()
    host.run(seconds=0.002)
    host.kernel.scheduler.charged_us_total += 42.0
    assert "scheduler-reconcile" in _checks(host.kernel.sanitizer.finish())


def test_violation_render_carries_context():
    host = Host(mode=SystemMode.RC, seed=3, sanitize=True)
    victim = host.kernel.containers.create("victim")
    host.kernel.containers.release(victim)
    host.kernel.cpu.post_hard_interrupt(
        InterruptJob(cost_us=5.0, action=lambda: None, charge=victim)
    )
    host.run(until_us=100.0)
    violations = host.kernel.sanitizer.finish()
    dead = [v for v in violations if v.check == "dead-container-charge"]
    assert len(dead) == 1
    rendered = dead[0].render()
    assert "victim" in rendered and "t=" in rendered


# ---------------------------------------------------------------------------
# Scheduler note_charge plumbing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "mode", [SystemMode.RC, SystemMode.LRP, SystemMode.UNMODIFIED]
)
def test_scheduler_charge_totals_accumulate(mode):
    """All three scheduler implementations feed charged_us_total, so the
    reconcile check covers every system mode."""
    host = Host(mode=mode, seed=9, sanitize=True)

    def program():
        yield api.Compute(2_000.0)

    host.kernel.spawn_process("p", program)
    host.run(seconds=0.01)
    assert host.kernel.scheduler.charged_us_total > 0.0
    assert host.kernel.sanitizer.finish() == []
