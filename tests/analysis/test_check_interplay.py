"""Pragma / allowlist / baseline interplay across lint and analyze:
pragma wins over baseline, stale baseline entries are reported, and
unwaivable rules stay refused through every mechanism."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import lint
from repro.analysis.analyze import (
    analyze_graph,
    run_analyze,
    unwaivable_rules,
)
from repro.analysis.graph import ModuleGraph

# ---------------------------------------------------------------------------
# Pragmas across both tools
# ---------------------------------------------------------------------------


def test_generalized_pragma_suppresses_lint_rules():
    # The new `# analysis: allow[...]` spelling works for DET rules too.
    source = (
        "import time\n\ndef f():\n"
        "    return time.time()  # analysis: allow[DET101]\n"
    )
    assert lint.lint_source(source, "m.py") == []


def test_det_pragma_suppresses_analyzer_rules():
    # And the legacy `# det: allow[...]` spelling reaches analyzer rules.
    graph = ModuleGraph.from_sources(
        {
            "apps/t.py": (
                "def f(state):\n"
                "    state.pass_value = 1.0  # det: allow[SMP303]\n"
            )
        }
    )
    assert analyze_graph(graph) == []


def test_pragma_only_covers_its_own_line_and_rule():
    graph = ModuleGraph.from_sources(
        {
            "apps/t.py": (
                "def f(state):\n"
                "    state.pass_value = 1.0  # analysis: allow[UNIT401]\n"
                "    state._group_vtime = 2.0\n"
            )
        }
    )
    rules = [v.rule for v in analyze_graph(graph)]
    assert rules == ["SMP303", "SMP303"]  # wrong rule id waives nothing


def test_file_allowlist_waives_exactly_the_named_rule():
    graph = ModuleGraph.from_sources(
        {
            "apps/t.py": (
                "def f(state, size_bytes):\n"
                "    state.pass_value = 1.0\n"
                "    total_us = size_bytes\n"
            )
        }
    )
    violations = analyze_graph(
        graph, allowlist={"apps/t.py": {"SMP303": "test reason"}}
    )
    assert [v.rule for v in violations] == ["UNIT402"]


# ---------------------------------------------------------------------------
# Pragma wins over baseline (the fingerprint never reaches reconcile)
# ---------------------------------------------------------------------------


def _write_tree(tmp_path, sources):
    root = tmp_path / "tree"
    for rel, text in sources.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


def test_pragma_beats_baseline_and_strands_the_entry(tmp_path, capsys):
    root = _write_tree(
        tmp_path,
        {
            "apps/t.py": (
                "def f(state):\n"
                "    state.pass_value = 1.0  # analysis: allow[SMP303]\n"
            )
        },
    )
    baseline = tmp_path / "b.json"
    baseline.write_text(
        json.dumps(
            [
                {
                    "path": "apps/t.py",
                    "rule": "SMP303",
                    "code": "state.pass_value = 1.0  "
                    "# analysis: allow[SMP303]",
                    "reason": "grandfathered before the pragma landed",
                }
            ]
        )
    )
    # The pragma suppresses the violation before baseline matching, so
    # the baseline entry is now stale -- and stale entries fail the run
    # until retired.
    rc = run_analyze(root=root, baseline_path=baseline)
    out = capsys.readouterr().out
    assert rc == 1
    assert "stale baseline entry" in out
    # Retiring it with --update-baseline clears the failure.
    assert (
        run_analyze(
            update_baseline=True, root=root, baseline_path=baseline
        )
        == 0
    )
    assert json.loads(baseline.read_text()) == []
    assert run_analyze(root=root, baseline_path=baseline) == 0


def test_stale_lint_baseline_is_surfaced_as_grandfather_budget():
    # The lint keeps its original one-for-one absorption: a baseline
    # fingerprint only absorbs one live occurrence; a second identical
    # violation is new.
    violation = lint.lint_source(
        "import time\n\ndef f():\n    return time.time()\n", "m.py"
    )[0]
    from collections import Counter

    twice = [violation, violation]
    new, old = lint.split_by_baseline(
        twice, Counter([violation.fingerprint()])
    )
    assert len(old) == 1 and len(new) == 1


# ---------------------------------------------------------------------------
# Unwaivable rules stay refused everywhere
# ---------------------------------------------------------------------------


def test_obs_wall_clock_unwaivable_through_every_spelling():
    source = (
        "import time\n\ndef f():\n"
        "    return time.time()  # analysis: allow[DET101]\n"
    )
    violations = lint.lint_source(
        source, "obs/export.py", allowed=("DET101",)
    )
    assert [v.rule for v in violations] == ["DET101"]


def test_cpu_charging_rules_unwaivable_in_analyze():
    assert unwaivable_rules("kernel/cpu.py") == {"CHG201", "CHG202"}
    assert unwaivable_rules("io/device.py") == {"CHG201", "CHG202"}
    assert unwaivable_rules("net/tcp.py") == frozenset()
    # A pragma on the consuming primitive in kernel/cpu.py is ignored.
    graph = ModuleGraph.from_sources(
        {
            "kernel/cpu.py": (
                "class CPU:\n"
                "    def _account(self, amount_us):  "
                "# analysis: allow[CHG201]\n"
                "        self.busy_us += amount_us\n"
            )
        }
    )
    assert [v.rule for v in analyze_graph(graph)] == ["CHG201"]


def test_analyze_baseline_cannot_absorb_unwaivable(tmp_path, capsys):
    root = _write_tree(
        tmp_path,
        {
            "kernel/cpu.py": (
                "class CPU:\n"
                "    def _account(self, amount_us):\n"
                "        self.busy_us += amount_us\n"
            )
        },
    )
    baseline = tmp_path / "b.json"
    violation = analyze_graph(ModuleGraph.load(root))[0]
    baseline.write_text(
        json.dumps(
            [
                {
                    "path": violation.path,
                    "rule": violation.rule,
                    "code": violation.code,
                    "reason": "hand-edited attempt to grandfather",
                }
            ]
        )
    )
    assert run_analyze(root=root, baseline_path=baseline) == 1
    # --update-baseline refuses to write it, too.
    rc = run_analyze(
        update_baseline=True, root=root, baseline_path=baseline
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "refused to grandfather" in out
    assert json.loads(baseline.read_text()) == []


# ---------------------------------------------------------------------------
# The committed analyzer baseline stays honest
# ---------------------------------------------------------------------------


def test_committed_analyze_baseline_entries_are_justified():
    from repro.analysis.analyze import ANALYZE_BASELINE_PATH
    from repro.analysis.graph import load_baseline_entries

    for entry in load_baseline_entries(ANALYZE_BASELINE_PATH):
        assert str(entry.get("reason", "")).strip(), (
            f"baseline entry for {entry.get('path')} needs a written "
            "justification"
        )
        assert entry["rule"] not in unwaivable_rules(entry["path"])
