"""The shared module graph: parsing, pragmas, call resolution, and the
reasoned-baseline reconcile that every analysis pass runs off."""

from __future__ import annotations

from repro.analysis.graph import (
    ModuleGraph,
    ModuleInfo,
    Violation,
    collect_pragmas,
    collect_unit_overrides,
    reconcile_baseline,
)

# ---------------------------------------------------------------------------
# Pragmas and annotations
# ---------------------------------------------------------------------------


def test_pragma_accepts_both_spellings_and_comma_lists():
    pragmas = collect_pragmas(
        [
            "x = 1  # det: allow[DET101]",
            "y = 2  # analysis: allow[CHG201]",
            "z = 3  # analysis: allow[SMP302, UNIT401]",
            "plain = 4",
        ]
    )
    assert pragmas == {
        1: {"DET101"},
        2: {"CHG201"},
        3: {"SMP302", "UNIT401"},
    }


def test_unit_overrides_declare_and_clear_dimensions():
    overrides = collect_unit_overrides(
        [
            "# analysis: unit[budget=us]",
            "# analysis: unit[ratio_us=none]",
        ]
    )
    assert overrides == {"budget": "us", "ratio_us": None}


# ---------------------------------------------------------------------------
# Function collection and call resolution
# ---------------------------------------------------------------------------

_RESOLUTION_SOURCES = {
    "a.py": (
        "class Worker:\n"
        "    def run(self):\n"
        "        self.step()\n"
        "        helper()\n"
        "    def step(self):\n"
        "        shared()\n"
        "\n"
        "def helper():\n"
        "    pass\n"
    ),
    "b.py": ("def shared():\n    pass\n"),
}


def test_function_collection_and_qualnames():
    graph = ModuleGraph.from_sources(_RESOLUTION_SOURCES)
    module = graph.modules["a.py"]
    assert set(module.functions) == {"Worker.run", "Worker.step", "helper"}
    run = module.functions["Worker.run"]
    assert run.cls == "Worker"
    assert run.call_names == frozenset({"step", "helper"})


def test_resolution_prefers_own_class_then_module_then_global():
    graph = ModuleGraph.from_sources(_RESOLUTION_SOURCES)
    run = graph.function("a.py", "Worker.run")
    (step,) = graph.resolve(run, "step")
    assert step.qualname == "Worker.step"
    (helper,) = graph.resolve(run, "helper")
    assert helper.qualname == "helper"
    step_fn = graph.function("a.py", "Worker.step")
    (shared,) = graph.resolve(step_fn, "shared")
    assert shared.rel == "b.py"


def test_same_module_only_resolution_stops_at_the_module_edge():
    graph = ModuleGraph.from_sources(_RESOLUTION_SOURCES)
    step = graph.function("a.py", "Worker.step")
    assert graph.resolve(step, "shared", same_module_only=True) == []
    names = {
        fn.qualname for fn in graph.reachable(step, same_module_only=True)
    }
    assert names == {"Worker.step"}


def test_reachability_crosses_modules_by_name():
    graph = ModuleGraph.from_sources(_RESOLUTION_SOURCES)
    run = graph.function("a.py", "Worker.run")
    reached = {(fn.rel, fn.qualname) for fn in graph.reachable(run)}
    assert ("b.py", "shared") in reached


def test_nested_function_calls_fold_into_the_enclosing_function():
    graph = ModuleGraph.from_sources(
        {
            "m.py": (
                "def outer():\n"
                "    def inner():\n"
                "        deep_call()\n"
                "    return inner\n"
            )
        }
    )
    outer = graph.function("m.py", "outer")
    assert "deep_call" in outer.call_names
    assert set(graph.modules["m.py"].functions) == {"outer"}


# ---------------------------------------------------------------------------
# Reasoned-baseline reconcile
# ---------------------------------------------------------------------------


def _violation(path="m.py", rule="CHG201", code="return True", line=3):
    return Violation(
        path=path, rule=rule, line=line, col=0, message="m", code=code
    )


def _entry(path="m.py", rule="CHG201", code="return True", reason="ok"):
    return {"path": path, "rule": rule, "code": code, "reason": reason}


def test_reconcile_absorbs_one_for_one():
    new, old, stale, unjust = reconcile_baseline(
        [_violation(line=3), _violation(line=9)],
        [_entry()],
        lambda rel: frozenset(),
    )
    assert len(old) == 1 and len(new) == 1
    assert stale == [] and unjust == []


def test_reconcile_reports_stale_entries():
    new, old, stale, unjust = reconcile_baseline(
        [], [_entry()], lambda rel: frozenset()
    )
    assert new == [] and old == []
    assert stale == [_entry()]
    assert unjust == []


def test_reconcile_refuses_unjustified_entries():
    entry = _entry(reason="   ")
    new, old, stale, unjust = reconcile_baseline(
        [_violation()], [entry], lambda rel: frozenset()
    )
    assert len(new) == 1 and old == []
    assert unjust == [entry]


def test_reconcile_never_absorbs_unwaivable_rules():
    new, old, stale, unjust = reconcile_baseline(
        [_violation()],
        [_entry()],
        lambda rel: frozenset({"CHG201"}),
    )
    assert len(new) == 1 and old == []
    # The entry matched nothing it was allowed to absorb: it is stale.
    assert stale == [_entry()]


def test_moduleinfo_violation_snaps_source_line():
    module = ModuleInfo.parse("m.py", "x = 1\ny =  2\n")
    violation = module.violation(module.tree.body[1], "UNIT402", "msg")
    assert violation.line == 2
    assert violation.code == "y =  2"
    assert violation.fingerprint() == ("m.py", "UNIT402", "y =  2")
