"""Static/dynamic agreement on the charging surface: every consuming
primitive the CHG2xx pass registers must either name a runtime
sanitizer check that reconciles its dimension, or carry a reasoned
baseline entry admitting the dimension is unmetered."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import sanitizer
from repro.analysis.charging import PRIMITIVES
from repro.analysis.analyze import ANALYZE_BASELINE_PATH
from repro.analysis.graph import load_baseline_entries


def _sanitizer_check_ids() -> set:
    """Every check id the sanitizer can actually emit, from its AST:
    the first argument of each _violate(...) / _compare(...) call."""
    source = Path(sanitizer.__file__).read_text(encoding="utf-8")
    ids: set = set()
    for node in ast.walk(ast.parse(source)):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", None
        )
        if name in ("_violate", "_compare") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                ids.add(first.value)
    return ids


def test_dimension_checks_name_only_real_sanitizer_checks():
    emitted = _sanitizer_check_ids()
    assert emitted, "failed to extract check ids from the sanitizer"
    for dimension, checks in sanitizer.DIMENSION_CHECKS.items():
        for check in checks:
            assert check in emitted, (
                f"DIMENSION_CHECKS[{dimension!r}] names {check!r}, "
                "which the sanitizer never emits"
            )


def test_every_metered_primitive_is_covered_by_its_dimension():
    for primitive in PRIMITIVES:
        if primitive.sanitizer_check is None:
            continue
        covered = sanitizer.DIMENSION_CHECKS.get(primitive.dimension, ())
        assert primitive.sanitizer_check in covered, (
            f"{primitive.qualname} ({primitive.dimension}) names "
            f"sanitizer check {primitive.sanitizer_check!r}, but "
            "DIMENSION_CHECKS does not list it for that dimension"
        )


def test_unmetered_primitives_carry_a_reasoned_baseline_entry():
    entries = load_baseline_entries(ANALYZE_BASELINE_PATH)
    for primitive in PRIMITIVES:
        if primitive.sanitizer_check is not None:
            continue
        matching = [
            e
            for e in entries
            if e["path"] == primitive.rel
            and e["rule"].startswith("CHG")
            and str(e.get("reason", "")).strip()
        ]
        assert matching, (
            f"{primitive.qualname} has no runtime sanitizer coverage "
            f"({primitive.dimension}); it must charge statically or be "
            "baselined with a written reason"
        )


def test_every_ledger_dimension_with_a_primitive_has_runtime_checks():
    static_dimensions = {
        p.dimension for p in PRIMITIVES if p.sanitizer_check is not None
    }
    for dimension in static_dimensions:
        assert sanitizer.DIMENSION_CHECKS.get(dimension), (
            f"dimension {dimension!r} is metered statically but has no "
            "runtime reconciliation checks"
        )
