"""The SMTP-style mail server: submit, spool, deliver, account."""

import pytest

from repro import AddrFilter, Host, SystemMode, ip_addr
from repro.apps.httpserver.common import ListenSpec
from repro.apps.mailserver import MailClient, MailServer, MailStats

PREMIUM = ip_addr(10, 3, 3, 3)


def served_host(use_containers=False, specs=None, **kwargs):
    host = Host(
        mode=SystemMode.RC if use_containers else SystemMode.UNMODIFIED,
        seed=101,
    )
    server = MailServer(
        host.kernel, use_containers=use_containers, specs=specs, **kwargs
    )
    server.install()
    return host, server


def test_single_submission_roundtrip():
    host, server = served_host()
    client = MailClient(host.kernel, ip_addr(10, 0, 0, 1), "m1")
    client.start(at_us=2_000.0)
    host.run(seconds=0.1)
    client.stop()
    host.run(seconds=0.1)
    assert client.stats_submitted >= 1
    assert server.stats.spooled >= 1
    assert server.stats.delivered >= 1


def test_sustained_submission_throughput():
    host, server = served_host(delivery_threads=8)
    clients = [
        MailClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"m{i}")
        for i in range(8)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + 150.0 * index)
    host.run(seconds=1.0)
    total = sum(c.stats_submitted for c in clients)
    assert total > 300
    # Delivery keeps up (queue drains within the delivery RTT budget).
    assert server.stats.delivered > 0.8 * server.stats.spooled


def test_queue_capacity_rejects_overflow():
    host, server = served_host(delivery_threads=1, queue_capacity=4)
    # One slow delivery thread, many submitters: the spool fills.
    clients = [
        MailClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"m{i}")
        for i in range(10)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + 50.0 * index)
    host.run(seconds=0.5)
    assert server.stats.rejected > 0


def test_validation():
    host = Host(mode=SystemMode.UNMODIFIED, seed=101)
    with pytest.raises(ValueError):
        MailServer(host.kernel, delivery_threads=0)


def test_per_class_accounting_with_containers():
    """Premium and bulk sender classes: both kernel protocol work and
    user-level spooling/delivery are charged to the right class."""
    specs = [
        ListenSpec(
            "premium",
            addr_filter=AddrFilter(template=PREMIUM, prefix_len=32),
            priority=9,
        ),
        ListenSpec("bulk", priority=1),
    ]
    host, server = served_host(use_containers=True, specs=specs)
    premium = MailClient(
        host.kernel, PREMIUM, "vip", size_bytes=2 * 1024,
        think_time_us=5_000.0,
    )
    bulk = [
        MailClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"bulk{i}",
            size_bytes=64 * 1024,
        )
        for i in range(4)
    ]
    premium.start(at_us=2_000.0)
    for index, client in enumerate(bulk):
        client.start(at_us=2_500.0 + index * 200.0)
    host.run(seconds=1.0)
    classes = {
        c.name: c
        for c in host.kernel.containers.all_containers()
        if ":class:" in c.name
    }
    premium_usage = classes["maild:class:premium"].usage
    bulk_usage = classes["maild:class:bulk"].usage
    assert premium_usage.cpu_us > 0
    assert premium_usage.cpu_network_us > 0  # kernel work charged too
    # Four bulk senders with 32x bigger messages dominate consumption.
    assert bulk_usage.cpu_us > 3 * premium_usage.cpu_us


def test_stats_dataclass_defaults():
    stats = MailStats()
    assert (stats.accepted, stats.spooled, stats.delivered, stats.rejected) == (
        0, 0, 0, 0,
    )
