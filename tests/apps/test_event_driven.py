"""Event-driven server variants."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import EventDrivenServer, ListenSpec
from repro.apps.webclient import HttpClient
from repro.net.filters import AddrFilter
from repro.net.packet import ip_addr


def served_host(mode=SystemMode.RC, **kwargs):
    host = Host(mode=mode, seed=31)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(host.kernel, **kwargs)
    server.install()
    return host, server


@pytest.mark.parametrize("event_api", ["select", "eventapi"])
def test_both_event_mechanisms_serve(event_api):
    host, server = served_host(use_containers=True, event_api=event_api)
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=100_000.0)
    assert client.stats_completed > 10
    # The last response may still be on the wire at the horizon.
    assert abs(server.stats.static_served - client.stats_completed) <= 1


def test_invalid_event_api_rejected():
    host = Host(mode=SystemMode.RC, seed=31)
    with pytest.raises(ValueError):
        EventDrivenServer(host.kernel, event_api="poll")


def test_multiple_listen_specs_with_filters():
    premium_addr = ip_addr(10, 9, 9, 9)
    specs = [
        ListenSpec(
            "premium",
            addr_filter=AddrFilter(template=premium_addr, prefix_len=32),
            priority=9,
        ),
        ListenSpec("default", priority=1),
    ]
    host, server = served_host(
        specs=specs, use_containers=True, event_api="select"
    )
    premium = HttpClient(host.kernel, premium_addr, "vip")
    regular = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "reg")
    premium.start(at_us=1_000.0)
    regular.start(at_us=1_000.0)
    host.run(until_us=100_000.0)
    assert premium.stats_completed > 5
    assert regular.stats_completed > 5
    # Each class was accounted under its own container.
    names = {c.name for c in host.kernel.containers.all_containers()}
    assert "httpd:class:premium" in names
    assert "httpd:class:default" in names


def test_class_container_accumulates_usage():
    host, server = served_host(use_containers=True)
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=200_000.0)
    class_container = next(
        c
        for c in host.kernel.containers.all_containers()
        if c.name == "httpd:class:default"
    )
    assert class_container.usage.cpu_us > 0
    # Kernel network processing was charged to the class container too.
    assert class_container.usage.cpu_network_us > 0


def test_server_closes_connections_after_response():
    host, server = served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=300_000.0)
    assert server.open_connections() <= 2  # nothing leaks


def test_classifier_assigns_app_priority():
    vip_addr = ip_addr(10, 9, 9, 9)
    host, server = served_host(
        mode=SystemMode.UNMODIFIED,
        use_containers=False,
        classifier=lambda addr: 9 if addr == vip_addr else 1,
    )
    vip = HttpClient(host.kernel, vip_addr, "vip")
    vip.start(at_us=1_000.0)
    host.run(until_us=50_000.0)
    assert vip.stats_completed > 0


def test_unknown_path_closes_connection():
    host, server = served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c", path="/missing")
    client.start(at_us=1_000.0)
    host.run(until_us=100_000.0)
    assert client.stats_completed == 0
    assert server.stats.connections_closed > 0


def test_bound_file_handle_bills_disk_to_class_container():
    """Static files are served through container-bound descriptors
    (section 4.7): a cold read's disk service lands on the connection's
    class container, not on the server process's own container."""
    host = Host(mode=SystemMode.RC, seed=31)
    host.kernel.fs.add_file("/cold.bin", 8 * 1024)  # never warmed
    host.kernel.fs.cache.capacity_bytes = 1024  # too small to ever hit
    server = EventDrivenServer(host.kernel, use_containers=True)
    server.install()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c",
                        path="/cold.bin")
    client.start(at_us=1_000.0)
    host.run(until_us=200_000.0)
    assert client.stats_completed > 0
    by_name = {
        c.name: c for c in host.kernel.containers.all_containers()
    }
    class_container = by_name["httpd:class:default"]
    service = host.kernel.disk.service_time_us(8 * 1024)
    assert class_container.usage.disk_us == pytest.approx(
        client.stats_completed * service
    )
    assert class_container.usage.disk_bytes == (
        client.stats_completed * 8 * 1024
    )
    # The server process's own container did none of the disk work.
    assert by_name["proc:httpd"].usage.disk_us == 0.0
