"""Multi-threaded (thread-per-connection) server."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import MultiThreadedServer
from repro.apps.webclient import HttpClient
from repro.net.packet import ip_addr


def served_host(mode=SystemMode.RC, **kwargs):
    host = Host(mode=mode, seed=33)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = MultiThreadedServer(host.kernel, **kwargs)
    server.install()
    return host, server


def test_serves_concurrent_clients():
    host, server = served_host(n_threads=8)
    clients = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
        for i in range(6)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + index * 100.0)
    host.run(until_us=300_000.0)
    assert all(c.stats_completed > 5 for c in clients)
    assert server.stats.static_served == sum(c.stats_completed for c in clients)


def test_thread_pool_size_enforced():
    host, _server = served_host(n_threads=4)
    host.run(until_us=10_000.0)
    threads = host.kernel.all_threads()
    workers = [t for t in threads if "mt-httpd" in t.name]
    assert len(workers) == 4


def test_per_connection_containers_created_and_destroyed():
    host, _server = served_host(n_threads=4, use_containers=True)
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=2_000.0)
    host.run(until_us=200_000.0)
    assert client.stats_completed > 10
    # Per-connection containers are transient; none should accumulate.
    conn_containers = [
        c
        for c in host.kernel.containers.all_containers()
        if c.name == "conn"
    ]
    assert len(conn_containers) <= 4  # at most one per busy worker


def test_persistent_connection_served_by_one_thread():
    host, server = served_host(n_threads=4)
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 0, 1), "c", persistent=True
    )
    client.start(at_us=2_000.0)
    host.run(until_us=200_000.0)
    assert client.stats_completed > 50
    assert server.stats.connections_accepted == 1


def test_needs_at_least_one_thread():
    host = Host(mode=SystemMode.RC, seed=33)
    with pytest.raises(ValueError):
        MultiThreadedServer(host.kernel, n_threads=0)
