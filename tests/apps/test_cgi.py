"""CGI dispatch: traditional fork and persistent (FastCGI) workers."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import CgiPolicy, EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.net.packet import ip_addr

#: Small CGI cost so tests run quickly (the experiments use 2 s).
FAST_CGI_US = 20_000.0


def served_host(mode=SystemMode.RC, cgi=None, **kwargs):
    host = Host(mode=mode, seed=37)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(host.kernel, cgi=cgi, **kwargs)
    server.install()
    return host, server


def test_cgi_path_matching():
    policy = CgiPolicy(prefix="/cgi/")
    assert policy.matches("/cgi/search")
    assert not policy.matches("/index.html")


def test_fork_cgi_completes_request():
    cgi = CgiPolicy(cpu_us=FAST_CGI_US)
    host, server = served_host(use_containers=True, cgi=cgi)
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "c", path="/cgi/app",
        timeout_us=10_000_000.0,
    )
    client.start(at_us=2_000.0)
    host.run(until_us=500_000.0)
    assert client.stats_completed >= 1
    assert server.stats.cgi_forked >= 1
    assert server.stats.cgi_completed >= 1


def test_fork_cgi_works_without_containers():
    cgi = CgiPolicy(cpu_us=FAST_CGI_US)
    host, server = served_host(
        mode=SystemMode.UNMODIFIED, use_containers=False, cgi=cgi
    )
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "c", path="/cgi/app",
        timeout_us=10_000_000.0,
    )
    client.start(at_us=2_000.0)
    host.run(until_us=500_000.0)
    assert client.stats_completed >= 1


def test_cgi_container_inherited_by_child():
    """Traditional CGI passes the request's container by fork
    inheritance (section 4.8); the child's 2-second burn must be charged
    to a per-request CGI container, not to a fresh process container."""
    cgi = CgiPolicy(cpu_us=FAST_CGI_US, cpu_limit=0.5)
    host, server = served_host(use_containers=True, cgi=cgi)
    destroyed_cgi_cpu = []
    host.kernel.containers.on_destroy.append(
        lambda c: destroyed_cgi_cpu.append(c.usage.cpu_us)
        if ":cgi-req-" in c.name
        else None
    )
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "c", path="/cgi/app",
        timeout_us=10_000_000.0,
    )
    client.start(at_us=2_000.0)
    host.run(until_us=500_000.0)
    assert client.stats_completed >= 1
    assert destroyed_cgi_cpu
    # The request container absorbed (at least) the CGI compute burn.
    assert max(destroyed_cgi_cpu) >= FAST_CGI_US


def test_cgi_parent_cap_limits_cpu_share():
    cgi = CgiPolicy(cpu_us=2_000_000.0, cpu_limit=0.25)
    host, server = served_host(use_containers=True, cgi=cgi)
    for index in range(3):
        HttpClient(
            host.kernel, ip_addr(10, 0, 1, index + 1), f"c{index}",
            path="/cgi/app", timeout_us=60_000_000.0,
        ).start(at_us=2_000.0 + index * 500.0)
    host.run(until_us=2_000_000.0)
    # Sum CPU of live CGI request containers: bounded by cap * elapsed.
    cgi_cpu = sum(
        c.usage.cpu_us
        for c in host.kernel.containers.all_containers()
        if ":cgi-req-" in c.name
    )
    assert cgi_cpu <= 0.25 * host.sim.now * 1.1


def test_static_traffic_survives_cgi_load():
    cgi = CgiPolicy(cpu_us=500_000.0, cpu_limit=0.3)
    host, server = served_host(use_containers=True, cgi=cgi)
    HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "cgi", path="/cgi/app",
        timeout_us=60_000_000.0,
    ).start(at_us=2_000.0)
    static = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "static")
    static.start(at_us=2_000.0)
    host.run(until_us=1_000_000.0)
    assert static.stats_completed > 200  # barely affected by the sandbox


def test_in_process_module_serves_and_charges():
    """Library-module dynamic handlers (ISAPI/NSAPI style): no fork, and
    the burn is still charged to a per-request container."""
    cgi = CgiPolicy(cpu_us=FAST_CGI_US, in_process=True, cpu_limit=0.5)
    host, server = served_host(use_containers=True, cgi=cgi)
    destroyed = []
    host.kernel.containers.on_destroy.append(
        lambda c: destroyed.append(c.usage.cpu_us)
        if ":cgi-req-" in c.name
        else None
    )
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "c", path="/cgi/app",
        timeout_us=10_000_000.0,
    )
    client.start(at_us=2_000.0)
    host.run(until_us=500_000.0)
    assert client.stats_completed >= 1
    assert len(host.kernel.processes) == 1  # no CGI processes forked
    assert destroyed and max(destroyed) >= FAST_CGI_US


def test_in_process_module_stalls_event_loop():
    """The cost of skipping fault isolation: the single-threaded server
    is unavailable to everyone else for the handler's whole burst."""
    cgi = CgiPolicy(cpu_us=100_000.0, in_process=True)
    host, server = served_host(use_containers=True, cgi=cgi)
    static = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "static")
    static.start(at_us=2_000.0)
    HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "cgi", path="/cgi/app",
        timeout_us=10_000_000.0,
    ).start(at_us=50_000.0)
    host.run(until_us=400_000.0)
    # The static client saw at least one ~100 ms latency spike.
    assert max(static.latencies_us) > 90_000.0


def test_in_process_excludes_persistent_workers():
    with pytest.raises(ValueError):
        CgiPolicy(in_process=True, persistent_workers=2)


def test_persistent_workers_serve_cgi():
    cgi = CgiPolicy(cpu_us=FAST_CGI_US, persistent_workers=2)
    host, server = served_host(use_containers=True, cgi=cgi)
    clients = [
        HttpClient(
            host.kernel, ip_addr(10, 0, 1, i + 1), f"c{i}", path="/cgi/app",
            timeout_us=10_000_000.0,
        )
        for i in range(2)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=5_000.0 + index * 500.0)
    host.run(until_us=1_000_000.0)
    assert all(c.stats_completed >= 1 for c in clients)
    # Workers persist (no fork per request).
    worker_names = [
        p.name for p in host.kernel.processes.values()
        if p.name.startswith("fastcgi")
    ]
    assert len(worker_names) == 2


def test_persistent_workers_charge_request_container():
    """Explicit container passing (ContainerSendTo) charges the worker's
    burn to the request container."""
    cgi = CgiPolicy(cpu_us=FAST_CGI_US, persistent_workers=1, cpu_limit=0.5)
    host, server = served_host(use_containers=True, cgi=cgi)
    destroyed = []
    host.kernel.containers.on_destroy.append(
        lambda c: destroyed.append((c.name, c.usage.cpu_us))
        if ":cgi-req-" in c.name
        else None
    )
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 1, 1), "c", path="/cgi/app",
        timeout_us=10_000_000.0,
    )
    client.start(at_us=5_000.0)
    host.run(until_us=1_000_000.0)
    assert client.stats_completed >= 1
    assert destroyed
    assert max(cpu for _name, cpu in destroyed) >= FAST_CGI_US
