"""Workload generators: mixes, fleets, open-loop arrivals."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import EventDrivenServer
from repro.workloads import (
    SPECWEB_LIKE_MIX,
    ClosedLoopFleet,
    FileSizeMix,
    OpenLoopGenerator,
)
from repro.workloads.httpload import SizeClass


@pytest.fixture
def served_host():
    host = Host(mode=SystemMode.RC, seed=71)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(host.kernel, use_containers=True)
    server.install()
    return host, server


def test_mix_populate_creates_all_files(served_host):
    host, _server = served_host
    paths = SPECWEB_LIKE_MIX.populate(host.kernel)
    assert len(paths) == sum(c.count for c in SPECWEB_LIKE_MIX.classes)
    for path in paths:
        assert host.kernel.fs.exists(path)


def test_mix_pick_follows_weights(served_host):
    host, _server = served_host
    SPECWEB_LIKE_MIX.populate(host.kernel)
    rng = host.sim.rng.fork("picks")
    picks = [SPECWEB_LIKE_MIX.pick_path(rng) for _ in range(2_000)]
    small_fraction = sum("/small/" in p for p in picks) / len(picks)
    large_fraction = sum("/large/" in p for p in picks) / len(picks)
    assert small_fraction == pytest.approx(0.50, abs=0.05)
    assert large_fraction == pytest.approx(0.01, abs=0.01)


def test_mix_mean_size():
    mix = FileSizeMix(
        classes=(
            SizeClass("a", 1000, weight=0.5),
            SizeClass("b", 3000, weight=0.5),
        )
    )
    assert mix.mean_size_bytes() == pytest.approx(2000.0)


def test_mix_validation():
    with pytest.raises(ValueError):
        FileSizeMix(classes=())


def test_closed_loop_fleet_serves(served_host):
    host, server = served_host
    SPECWEB_LIKE_MIX.populate(host.kernel)
    fleet = ClosedLoopFleet(host.kernel, count=8, mix=SPECWEB_LIKE_MIX)
    fleet.start(at_us=2_000.0)
    host.run(seconds=0.5)
    assert fleet.completed() > 100
    assert fleet.mean_latency_ms() > 0


def test_fleet_validation(served_host):
    host, _server = served_host
    with pytest.raises(ValueError):
        ClosedLoopFleet(host.kernel, count=0)


def test_open_loop_generator_issues_at_rate(served_host):
    host, _server = served_host
    generator = OpenLoopGenerator(
        host.kernel, rate_per_sec=500.0, poisson=False
    )
    generator.start(at_us=2_000.0)
    host.run(seconds=1.0)
    assert generator.stats_issued == pytest.approx(500, abs=10)
    assert generator.stats_completed > 450
    assert generator.goodput(1.0) > 450


def test_open_loop_poisson_deterministic(served_host):
    host, _server = served_host
    generator = OpenLoopGenerator(
        host.kernel, rate_per_sec=300.0, rng=host.sim.rng.fork("gen")
    )
    generator.start(at_us=2_000.0)
    host.run(seconds=0.5)
    first = generator.stats_issued
    assert first > 50

    # Re-building the same seeded scenario reproduces the count.
    host2 = Host(mode=SystemMode.RC, seed=71)
    host2.kernel.fs.add_file("/index.html", 1024)
    host2.kernel.fs.warm("/index.html")
    EventDrivenServer(host2.kernel, use_containers=True).install()
    generator2 = OpenLoopGenerator(
        host2.kernel, rate_per_sec=300.0, rng=host2.sim.rng.fork("gen")
    )
    generator2.start(at_us=2_000.0)
    host2.run(seconds=0.5)
    assert generator2.stats_issued == first


def test_open_loop_overload_sheds(served_host):
    """Offered load beyond capacity: goodput saturates, not crashes."""
    host, _server = served_host
    generator = OpenLoopGenerator(
        host.kernel, rate_per_sec=6_000.0, poisson=False,
        timeout_us=300_000.0,
    )
    generator.start(at_us=2_000.0)
    host.run(seconds=1.0)
    assert generator.stats_issued > 5_500
    # Capacity is ~2900/s for this workload; under 2x overload the
    # goodput stays a substantial fraction of it rather than collapsing.
    assert 1_000 < generator.goodput(1.0) < 3_500


def test_generator_validation(served_host):
    host, _server = served_host
    with pytest.raises(ValueError):
        OpenLoopGenerator(host.kernel, rate_per_sec=0.0)
