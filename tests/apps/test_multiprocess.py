"""Pre-forked multi-process server."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import MultiProcessServer
from repro.apps.webclient import HttpClient
from repro.net.packet import ip_addr


def served_host(mode=SystemMode.UNMODIFIED, **kwargs):
    host = Host(mode=mode, seed=35)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = MultiProcessServer(host.kernel, **kwargs)
    server.install()
    return host, server


def test_workers_forked_and_master_exits():
    host, server = served_host(n_workers=4)
    host.run(until_us=20_000.0)
    names = [p.name for p in host.kernel.processes.values()]
    workers = [n for n in names if n.startswith("mp-httpd-w")]
    assert len(workers) == 4
    assert "mp-httpd" not in names  # master exited after forking


def test_listen_socket_survives_master_exit():
    host, server = served_host(n_workers=2)
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=5_000.0)
    host.run(until_us=100_000.0)
    assert client.stats_completed > 5


def test_concurrent_clients_spread_over_workers():
    host, server = served_host(n_workers=4)
    clients = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
        for i in range(4)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=5_000.0 + index * 100.0)
    host.run(until_us=300_000.0)
    assert all(c.stats_completed > 5 for c in clients)


def test_each_worker_is_own_resource_principal():
    """Section 3.1/Fig. 6: a multi-process app appears to the kernel as
    several resource principals."""
    host, server = served_host(n_workers=3)
    host.run(until_us=10_000.0)
    principals = [
        p.default_container.name for p in host.kernel.processes.values()
    ]
    assert len(set(principals)) == 3


def test_needs_at_least_one_worker():
    host = Host(mode=SystemMode.UNMODIFIED, seed=35)
    with pytest.raises(ValueError):
        MultiProcessServer(host.kernel, n_workers=0)
