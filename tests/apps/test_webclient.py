"""HTTP client behaviour against a live server."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import EventDrivenServer
from repro.apps.webclient import HttpClient
from repro.net.packet import ip_addr


def make_served_host(mode=SystemMode.RC, **server_kwargs):
    host = Host(mode=mode, seed=17)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(host.kernel, **server_kwargs)
    server.install()
    return host, server


def test_single_request_completes():
    host, _server = make_served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=20_000.0)
    assert client.stats_completed >= 1
    assert client.stats_retries == 0


def test_closed_loop_reissues():
    host, _server = make_served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=200_000.0)
    assert client.stats_completed > 50


def test_latency_recorded_per_request():
    host, _server = make_served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=100_000.0)
    assert len(client.latencies_us) == client.stats_completed
    assert all(lat > 0 for lat in client.latencies_us)
    assert client.mean_latency_ms() > 0


def test_persistent_client_reuses_connection():
    host, server = make_served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c", persistent=True)
    client.start(at_us=1_000.0)
    host.run(until_us=200_000.0)
    assert client.stats_completed > 100
    # Only one connection was ever accepted for all those requests.
    assert server.stats.connections_accepted == 1


def test_persistent_faster_than_per_connection():
    host_a, _ = make_served_host()
    per_conn = HttpClient(host_a.kernel, ip_addr(10, 0, 0, 1), "a")
    per_conn.start(at_us=1_000.0)
    host_a.run(until_us=500_000.0)
    host_b, _ = make_served_host()
    persistent = HttpClient(
        host_b.kernel, ip_addr(10, 0, 0, 1), "b", persistent=True
    )
    persistent.start(at_us=1_000.0)
    host_b.run(until_us=500_000.0)
    assert persistent.stats_completed > per_conn.stats_completed


def test_client_times_out_and_retries_without_server():
    host = Host(mode=SystemMode.RC, seed=17)  # no server installed
    client = HttpClient(
        host.kernel, ip_addr(10, 0, 0, 1), "c", timeout_us=50_000.0
    )
    client.start(at_us=0.0)
    host.run(until_us=400_000.0)
    assert client.stats_completed == 0
    assert client.stats_retries >= 5


def test_think_time_limits_rate():
    host, _server = make_served_host()
    slow = HttpClient(
        host.kernel,
        ip_addr(10, 0, 0, 1),
        "slow",
        think_time_us=50_000.0,
    )
    slow.start(at_us=1_000.0)
    host.run(until_us=1_000_000.0)
    # ~1s / (50ms think + ~1ms service) ~= 19 requests.
    assert 10 <= slow.stats_completed <= 25


def test_stop_halts_the_loop():
    host, _server = make_served_host()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=1_000.0)
    host.run(until_us=50_000.0)
    completed = client.stats_completed
    client.stop()
    host.run(until_us=300_000.0)
    assert client.stats_completed <= completed + 1


def test_on_complete_hook_fires():
    host, _server = make_served_host()
    seen = []
    client = HttpClient(
        host.kernel,
        ip_addr(10, 0, 0, 1),
        "c",
        on_complete=lambda c, req, lat: seen.append((req.path, lat)),
    )
    client.start(at_us=1_000.0)
    host.run(until_us=30_000.0)
    assert seen
    assert seen[0][0] == "/index.html"
