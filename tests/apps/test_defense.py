"""SYN-flood attacker and the application-level defence."""

import pytest

from repro import Host, SystemMode
from repro.apps.httpserver import EventDrivenServer, ListenSpec, SynFloodDefense
from repro.apps.synflood import DEFAULT_SUBNET, SynFlooder
from repro.apps.webclient import HttpClient
from repro.net.packet import ip_addr


def defended_host():
    host = Host(mode=SystemMode.RC, seed=41)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    defense = SynFloodDefense(threshold=3)
    server = EventDrivenServer(
        host.kernel,
        specs=[ListenSpec("default", notify_syn_drop=True)],
        use_containers=True,
        event_api="eventapi",
        defense=defense,
    )
    server.install()
    return host, server, defense


def test_flooder_generates_at_requested_rate():
    host = Host(mode=SystemMode.UNMODIFIED, seed=41)
    flooder = SynFlooder(host.kernel, rate_per_sec=1_000.0)
    flooder.start(at_us=0.0)
    host.run(until_us=1_000_000.0)
    assert flooder.stats_sent == pytest.approx(1_000, abs=5)


def test_flooder_batching_preserves_rate():
    host = Host(mode=SystemMode.UNMODIFIED, seed=41)
    flooder = SynFlooder(host.kernel, rate_per_sec=10_000.0, batch=10)
    flooder.start(at_us=0.0)
    host.run(until_us=1_000_000.0)
    assert flooder.stats_sent == pytest.approx(10_000, abs=20)


def test_flood_sources_stay_in_subnet():
    host = Host(mode=SystemMode.UNMODIFIED, seed=41)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=100.0, rng=host.sim.rng.fork("f")
    )
    addresses = [flooder._source_address() for _ in range(100)]
    for addr in addresses:
        assert (addr >> 8) << 8 == DEFAULT_SUBNET


def test_invalid_flood_parameters():
    host = Host(mode=SystemMode.UNMODIFIED, seed=41)
    with pytest.raises(ValueError):
        SynFlooder(host.kernel, rate_per_sec=-1.0)
    with pytest.raises(ValueError):
        SynFlooder(host.kernel, rate_per_sec=10.0, batch=0)


def test_defense_installs_filter_after_threshold():
    host, server, defense = defended_host()
    flooder = SynFlooder(
        host.kernel, rate_per_sec=20_000.0, batch=10,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=10_000.0)
    host.run(until_us=1_500_000.0)
    assert defense.stats_notifications >= 3
    assert defense.isolated_subnets == [DEFAULT_SUBNET]
    # The blackhole socket exists, filtered on the attacker subnet.
    filtered = [
        s for s in host.kernel.stack.listeners if s.addr_filter is not None
    ]
    assert len(filtered) == 1
    assert filtered[0].addr_filter.template == DEFAULT_SUBNET
    # Its container has numeric priority zero.
    assert filtered[0].container.attrs.numeric_priority == 0


def test_good_clients_keep_service_under_flood():
    host, server, _defense = defended_host()
    clients = [
        HttpClient(
            host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}",
            timeout_us=300_000.0,
        )
        for i in range(5)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + 100.0 * index)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=40_000.0, batch=10,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=100_000.0)
    host.run(until_us=3_000_000.0)
    total = sum(c.stats_completed for c in clients)
    assert total > 1_000  # sustained useful service under 40k SYN/s


def test_unmodified_collapses_under_same_flood():
    host = Host(mode=SystemMode.UNMODIFIED, seed=41)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    server = EventDrivenServer(host.kernel, use_containers=False)
    server.install()
    client = HttpClient(host.kernel, ip_addr(10, 0, 0, 1), "c")
    client.start(at_us=2_000.0)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=40_000.0, batch=10,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=100_000.0)
    host.run(until_us=1_000_000.0)
    before_rate = client.stats_completed
    host.run(until_us=2_000_000.0)
    during = client.stats_completed - before_rate
    assert during < 50  # effectively no service during the flood


def test_flood_drops_cost_only_demux_once_defended():
    """Under *saturation*, priority-zero work never runs: the flood is
    shed at the bounded queue for interrupt+demux cost only.  (When the
    CPU has idle time, the kernel may process priority-zero packets --
    that is work-conservation, not a leak.)"""
    host, server, _defense = defended_host()
    clients = [
        HttpClient(host.kernel, ip_addr(10, 0, 0, i + 1), f"c{i}")
        for i in range(25)
    ]
    for index, client in enumerate(clients):
        client.start(at_us=2_000.0 + 100.0 * index)
    flooder = SynFlooder(
        host.kernel, rate_per_sec=30_000.0, batch=10,
        rng=host.sim.rng.fork("flood"),
    )
    flooder.start(at_us=50_000.0)
    host.run(until_us=2_000_000.0)
    blackhole = next(
        c
        for c in host.kernel.containers.all_containers()
        if c.name.startswith("blackhole")
    )
    # Packets were dropped on the blackhole's bounded queue...
    assert blackhole.usage.packets_dropped > 10_000
    # ...without consuming meaningful protocol CPU for them.
    assert blackhole.usage.cpu_us < 0.05 * host.sim.now
    # And the well-behaved clients kept most of their throughput.
    assert sum(c.stats_completed for c in clients) > 2_000
