"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Host, SystemMode
from repro.experiments import sweep
from repro.sim.engine import Simulation


@pytest.fixture(autouse=True)
def _hermetic_sweep_cache(tmp_path, monkeypatch):
    """Keep sweep-cache traffic out of the repo's .sweepcache/.

    Every test gets a private scratch cache, so tests neither depend on
    nor pollute previously computed points.
    """
    monkeypatch.setenv(sweep.CACHE_DIR_ENV, str(tmp_path / "sweepcache"))


@pytest.fixture
def sim() -> Simulation:
    """A fresh deterministic simulation."""
    return Simulation(seed=42)


@pytest.fixture
def rc_host() -> Host:
    """A host in resource-container mode with a standard docroot."""
    host = Host(mode=SystemMode.RC, seed=42)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    return host


@pytest.fixture
def unmodified_host() -> Host:
    """A host in unmodified (softirq) mode with a standard docroot."""
    host = Host(mode=SystemMode.UNMODIFIED, seed=42)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    return host


@pytest.fixture
def lrp_host() -> Host:
    """A host in LRP mode with a standard docroot."""
    host = Host(mode=SystemMode.LRP, seed=42)
    host.kernel.fs.add_file("/index.html", 1024)
    host.kernel.fs.warm("/index.html")
    return host
